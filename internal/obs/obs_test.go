package obs_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestNilSafety: every instrument getter on a nil registry returns nil,
// and every method on a nil instrument (and a nil recorder) is a no-op
// rather than a panic — the disabled-observability contract the hot
// paths rely on.
func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_ns", obs.LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	r.Describe("x_total", "help")
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var rec *obs.Recorder
	rec.AddSpan(obs.Span{})
	rec.AddEvent(obs.Event{Kind: "x"})
	if tr := rec.Snapshot(); len(tr.Spans) != 0 || len(tr.Events) != 0 {
		t.Fatal("nil recorder snapshot must be empty")
	}
}

// TestRegistryDedup: the same (name, labels) yields the same
// instrument regardless of label order, and different labels yield
// distinct series under one family.
func TestRegistryDedup(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("frames_total", "dir", "in", "kind", "hello")
	b := r.Counter("frames_total", "kind", "hello", "dir", "in")
	if a != b {
		t.Fatal("label order must not split the series")
	}
	other := r.Counter("frames_total", "dir", "out", "kind", "hello")
	if other == a {
		t.Fatal("different labels must be a different series")
	}
	a.Add(3)
	other.Inc()
	if a.Value() != 3 || other.Value() != 1 {
		t.Fatalf("values crossed: %d %d", a.Value(), other.Value())
	}
}

// TestHistogramBuckets: observations land in the right cumulative
// buckets and the sum/count track exactly.
func TestHistogramBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 1000, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 6026 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	m := snap[0]
	wantCum := []int64{2, 3, 4, 5} // le=10, le=100, le=1000, +Inf
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("buckets: %+v", m.Buckets)
	}
	for i, want := range wantCum {
		if m.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, m.Buckets[i].Count, want, m.Buckets)
		}
	}
}

// expositionLine is the grammar the /metrics test and this one hold
// every non-comment line to: name{labels} value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?\d+$`)

// TestWritePromFormat: the exposition is well-formed line by line,
// families appear once with a TYPE header, histograms expose
// cumulative le buckets with +Inf, and the output is stable across
// calls.
func TestWritePromFormat(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sessions_total", "tier", "recon").Add(2)
	r.Counter("sessions_total", "tier", "plain").Inc()
	r.Describe("sessions_total", "sync sessions by tier")
	r.Gauge("peers").Set(3)
	r.Histogram("dur_ns", []int64{100, 1000}).Observe(150)

	var out strings.Builder
	if err := r.WriteProm(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "# HELP sessions_total sync sessions by tier") {
		t.Fatalf("missing HELP line:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE sessions_total counter") ||
		!strings.Contains(text, "# TYPE peers gauge") ||
		!strings.Contains(text, "# TYPE dur_ns histogram") {
		t.Fatalf("missing TYPE lines:\n%s", text)
	}
	if !strings.Contains(text, `sessions_total{tier="recon"} 2`) {
		t.Fatalf("missing labeled counter:\n%s", text)
	}
	if !strings.Contains(text, `dur_ns_bucket{le="+Inf"} 1`) ||
		!strings.Contains(text, `dur_ns_bucket{le="1000"} 1`) ||
		!strings.Contains(text, `dur_ns_bucket{le="100"} 0`) {
		t.Fatalf("histogram buckets wrong:\n%s", text)
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	var again strings.Builder
	if err := r.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Fatal("exposition output not stable across calls")
	}
}

// TestSnapshotJSONRoundTrip: a snapshot marshals and unmarshals to the
// same metric list.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("a_total", "k", "v").Add(7)
	r.Histogram("b_ns", []int64{1, 2}).Observe(2)
	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back []obs.Metric
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(back) != fmt.Sprint(snap) {
		t.Fatalf("round trip changed:\n%v\n%v", snap, back)
	}
}

// TestRecorderRingWraps: pushing past capacity keeps the newest spans,
// oldest-first, with monotonically assigned ids.
func TestRecorderRingWraps(t *testing.T) {
	rec := obs.NewRecorder()
	const n = 300 // > span ring capacity of 256
	for i := 0; i < n; i++ {
		rec.AddSpan(obs.Span{Role: "client", Peer: fmt.Sprintf("p%d", i), Start: time.Now()})
	}
	tr := rec.Snapshot()
	if len(tr.Spans) != 256 {
		t.Fatalf("ring holds %d spans, want 256", len(tr.Spans))
	}
	if tr.Spans[0].Peer != fmt.Sprintf("p%d", n-256) || tr.Spans[255].Peer != fmt.Sprintf("p%d", n-1) {
		t.Fatalf("ring kept the wrong window: first=%s last=%s", tr.Spans[0].Peer, tr.Spans[255].Peer)
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].ID <= tr.Spans[i-1].ID {
			t.Fatal("span ids must be monotonic")
		}
	}
}

// TestRecorderConcurrent: concurrent appends and snapshots race-free
// (run under -race in CI).
func TestRecorderConcurrent(t *testing.T) {
	rec := obs.NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.AddSpan(obs.Span{Role: "client", Start: time.Now()})
				rec.AddEvent(obs.Event{Kind: "backoff", Peer: "x"})
				_ = rec.Snapshot()
			}
		}(g)
	}
	wg.Wait()
}

// TestFormatTrace: the human-readable rendering mentions the span's
// peer, tier, phases and the event kinds, in time order.
func TestFormatTrace(t *testing.T) {
	rec := obs.NewRecorder()
	base := time.Now()
	rec.AddEvent(obs.Event{Time: base, Kind: "quarantine-enter", Peer: "1.2.3.4:9", Detail: "reason=corrupt frame"})
	rec.AddSpan(obs.Span{
		Role: "client", Peer: "1.2.3.4:9", Tier: "recon", Objects: 1,
		Phases: []obs.Phase{{Name: "negotiate", DurNs: 1000}, {Name: "ship", Object: "counter", DurNs: 2000}},
		Start:  base.Add(time.Millisecond), DurNs: 5000,
	})
	text := obs.FormatTrace(rec.Snapshot())
	for _, want := range []string{"quarantine-enter", "tier=recon", "negotiate", "ship[counter]", "1.2.3.4:9"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, text)
		}
	}
	if strings.Index(text, "quarantine-enter") > strings.Index(text, "tier=recon") {
		t.Fatalf("entries not in time order:\n%s", text)
	}
}
