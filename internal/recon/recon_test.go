package recon

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"sort"
	"testing"
)

// item derives a pseudo-commit key from an integer: the integer's low
// bits double as the locality prefix, so items get distinct prefixes
// AND distinct addresses, exercising both halves of the key order.
func item(i int) Item {
	addr := sha256.Sum256([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	return MakeItem(uint64(i%16), addr)
}

// refFingerprint is the oracle: XOR of the items, filtered by range.
func refFingerprint(items []Item, x, y Item) (Fingerprint, int) {
	var fp Fingerprint
	count := 0
	for _, it := range items {
		if inRange(it, x, y) {
			fp.XorItem(it)
			count++
		}
	}
	return fp, count
}

func TestAddRemoveLen(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		if !tr.Add(item(i)) {
			t.Fatalf("Add(%d) reported no change", i)
		}
	}
	if tr.Add(item(7)) {
		t.Fatal("duplicate Add reported a change")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if !tr.Remove(item(7)) {
		t.Fatal("Remove of a present item reported no change")
	}
	if tr.Remove(item(7)) {
		t.Fatal("Remove of an absent item reported a change")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d, want 99", tr.Len())
	}
}

func TestFingerprintIsOrderIndependent(t *testing.T) {
	items := make([]Item, 200)
	for i := range items {
		items[i] = item(i)
	}
	var a, b Tree
	for _, it := range items {
		a.Add(it)
	}
	rnd := rand.New(rand.NewSource(42))
	for _, i := range rnd.Perm(len(items)) {
		b.Add(items[i])
	}
	fa, ca := a.Root()
	fb, cb := b.Root()
	if fa != fb || ca != cb {
		t.Fatalf("insertion order changed the root: %x/%d vs %x/%d", fa[:6], ca, fb[:6], cb)
	}
	// Removing and re-adding is the identity.
	b.Remove(items[13])
	b.Add(items[13])
	if fb2, _ := b.Root(); fb2 != fb {
		t.Fatal("remove+add changed the fingerprint")
	}
}

func TestRangeMatchesOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var tr Tree
	var items []Item
	for i := 0; i < 500; i++ {
		it := item(i)
		items = append(items, it)
		tr.Add(it)
	}
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i][:], sorted[j][:]) < 0 })

	bounds := []Item{{}, sorted[0], sorted[100], sorted[250], sorted[499], item(100000)}
	for trial := 0; trial < 200; trial++ {
		x := bounds[rnd.Intn(len(bounds))]
		y := bounds[rnd.Intn(len(bounds))]
		gotFP, gotN := tr.Range(x, y)
		wantFP, wantN := refFingerprint(items, x, y)
		if gotFP != wantFP || gotN != wantN {
			t.Fatalf("Range(%x, %x) = %x/%d, want %x/%d", x[:4], y[:4], gotFP[:6], gotN, wantFP[:6], wantN)
		}
	}
	// Full range equals the root.
	rootFP, rootN := tr.Root()
	fullFP, fullN := tr.Range(Item{}, Item{})
	if rootFP != fullFP || rootN != fullN {
		t.Fatal("full Range disagrees with Root")
	}
}

func TestItemsAndSelect(t *testing.T) {
	var tr Tree
	var items []Item
	for i := 0; i < 300; i++ {
		it := item(i)
		items = append(items, it)
		tr.Add(it)
	}
	sort.Slice(items, func(i, j int) bool { return bytes.Compare(items[i][:], items[j][:]) < 0 })

	got := tr.Items(nil, Item{}, Item{}, -1)
	if len(got) != len(items) {
		t.Fatalf("Items returned %d, want %d", len(got), len(items))
	}
	for i := range got {
		if got[i] != items[i] {
			t.Fatalf("Items[%d] out of order", i)
		}
	}
	// A bounded subrange with a cap.
	x, y := items[50], items[120]
	capped := tr.Items(nil, x, y, 10)
	if len(capped) != 10 {
		t.Fatalf("capped Items returned %d, want 10", len(capped))
	}
	for i := range capped {
		if capped[i] != items[50+i] {
			t.Fatalf("capped Items[%d] = %x, want %x", i, capped[i][:4], items[50+i][:4])
		}
	}
	// Select is the k-th item of the range.
	for _, k := range []int{0, 1, 35, 69} {
		it, ok := tr.Select(x, y, k)
		if !ok || it != items[50+k] {
			t.Fatalf("Select(k=%d) = %x/%v, want %x", k, it[:4], ok, items[50+k][:4])
		}
	}
	if _, ok := tr.Select(x, y, 70); ok {
		t.Fatal("Select past the range end reported ok")
	}
	if _, ok := tr.Select(x, y, -1); ok {
		t.Fatal("Select(-1) reported ok")
	}
}

func TestRandomizedChurnAgainstOracle(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	var tr Tree
	ref := make(map[Item]bool)
	universe := make([]Item, 400)
	for i := range universe {
		universe[i] = item(i)
	}
	for step := 0; step < 5000; step++ {
		it := universe[rnd.Intn(len(universe))]
		if rnd.Intn(2) == 0 {
			if tr.Add(it) == ref[it] {
				t.Fatalf("step %d: Add change-report disagrees with oracle", step)
			}
			ref[it] = true
		} else {
			if tr.Remove(it) != ref[it] {
				t.Fatalf("step %d: Remove change-report disagrees with oracle", step)
			}
			delete(ref, it)
		}
	}
	var want Fingerprint
	for it := range ref {
		want.XorItem(it)
	}
	gotFP, gotN := tr.Root()
	if gotN != len(ref) || gotFP != want {
		t.Fatalf("after churn: root %x/%d, want %x/%d", gotFP[:6], gotN, want[:6], len(ref))
	}
}

func TestDeterministicShape(t *testing.T) {
	// Equal sets must fingerprint equal regardless of construction
	// history, including sets that passed through deletions.
	var a, b Tree
	for i := 0; i < 100; i++ {
		a.Add(item(i))
	}
	for i := 99; i >= 0; i-- {
		b.Add(item(i))
	}
	for i := 200; i < 260; i++ {
		b.Add(item(i))
	}
	for i := 200; i < 260; i++ {
		b.Remove(item(i))
	}
	fa, _ := a.Root()
	fb, _ := b.Root()
	if fa != fb {
		t.Fatal("equal sets disagree on fingerprint")
	}
	// And their range views agree everywhere.
	for i := 0; i < 100; i += 7 {
		x, y := item(i), Item{}
		af, an := a.Range(x, y)
		bf, bn := b.Range(x, y)
		if af != bf || an != bn {
			t.Fatalf("range view diverged at %d", i)
		}
	}
}
