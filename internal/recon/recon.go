// Package recon implements range-fingerprint set reconciliation over a
// keyspace of prefixed content addresses — the negotiation structure
// that makes "what commits are you missing?" answerable in
// O(diff + log n) wire cost, independent of history depth
// (go-spacemesh's hashsync shape: fingerprint a range, split on
// mismatch, ship items only for leaf ranges that differ).
//
// An item is an 8-byte big-endian locality prefix followed by a 32-byte
// SHA-256 content address. The prefix orders the keyspace so that items
// likely to differ between two replicas sort together — the store uses
// the commit's generation number, a deterministic function of the DAG,
// so recent divergence occupies one contiguous tail of the keyspace and
// the descent isolates it in O(log n) probes instead of chasing
// uniformly scattered addresses through every subtree. Raw SHA-256
// order would spread d differing items over d distinct subtrees,
// costing O(d · log n) probes plus enumeration of every leaf they
// touch.
//
// The fingerprint of a set is the XOR of the items' content addresses —
// an order-independent commutative monoid with inverse: adding and
// removing an item are the same XOR, which is what makes the aggregate
// cheap to maintain incrementally. Two equal sets always fingerprint
// equal; two different sets collide only if their symmetric difference
// XORs to zero, which for content addresses an honest peer computed is
// a 2^-256 event (fingerprints are compared together with exact counts,
// so the trivial "empty difference" is never mistaken). A peer grinding
// commit contents to force collisions would need a preimage-style
// attack on SHA-256 XOR sums; the sync layer treats fingerprints as an
// optimization and re-verifies every shipped commit by content address,
// so a forged match can suppress a transfer but never corrupt a store.
//
// The Tree is a deterministic treap ordered by item bytes: priorities
// are a fixed mix of the item's own bytes, so equal sets build equal
// shapes, and because items carry cryptographic hashes the priorities
// are uniform and the expected depth is O(log n). Every node carries
// the XOR fingerprint and count of its subtree, giving O(log n)
// incremental Add/Remove and — crucially — read-only range queries:
// Range, Items and Select walk the tree without rebalancing, so a store
// can answer fingerprint probes under its shared read lock while
// writers hold the exclusive one.
package recon

import (
	"bytes"
	"encoding/binary"
)

// AddrSize is the width of an item's content address (SHA-256).
const AddrSize = 32

// PrefixSize is the width of an item's locality prefix.
const PrefixSize = 8

// ItemSize is the width of one item: locality prefix ‖ content address.
const ItemSize = PrefixSize + AddrSize

// Item is one member of a reconciled set: an 8-byte big-endian locality
// prefix (the commit's generation) followed by its 32-byte content
// address. Items order lexicographically, so prefix first.
type Item [ItemSize]byte

// MakeItem builds an item from a locality prefix and a content address.
func MakeItem(prefix uint64, addr [AddrSize]byte) Item {
	var it Item
	binary.BigEndian.PutUint64(it[:PrefixSize], prefix)
	copy(it[PrefixSize:], addr[:])
	return it
}

// Prefix returns the item's locality prefix.
func (it Item) Prefix() uint64 { return binary.BigEndian.Uint64(it[:PrefixSize]) }

// Addr returns the item's content address.
func (it Item) Addr() [AddrSize]byte {
	var h [AddrSize]byte
	copy(h[:], it[PrefixSize:])
	return h
}

// Fingerprint is the XOR-of-addresses monoid value summarizing a range.
type Fingerprint [AddrSize]byte

// Xor folds other into f.
func (f *Fingerprint) Xor(other Fingerprint) {
	for i := range f {
		f[i] ^= other[i]
	}
}

// XorItem folds one item's content address into f (its own inverse:
// add == remove). The prefix is deterministic from the address's
// preimage, so it adds nothing to the digest.
func (f *Fingerprint) XorItem(it Item) {
	for i := range f {
		f[i] ^= it[PrefixSize+i]
	}
}

// IsZero reports whether f is the identity (the empty set's value).
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// node is one treap node: an item plus the XOR fingerprint and count of
// the subtree rooted here.
type node struct {
	item        Item
	prio        uint64
	left, right *node
	count       int
	agg         Fingerprint
}

// pull recomputes n's aggregates from its children.
func (n *node) pull() {
	n.count = 1
	n.agg = Fingerprint{}
	n.agg.XorItem(n.item)
	if n.left != nil {
		n.count += n.left.count
		n.agg.Xor(n.left.agg)
	}
	if n.right != nil {
		n.count += n.right.count
		n.agg.Xor(n.right.agg)
	}
}

// prio derives a treap priority from the item's own bytes (a splitmix64
// finalizer over its five words), so tree shape is a pure function of
// the set. Items carry SHA-256 outputs, so priorities are uniform;
// biasing them would take grinding commit *contents* for hash
// structure, and even a locally deep tree only slows queries, never
// corrupts them.
func prio(it Item) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < ItemSize; i += 8 {
		w := uint64(it[i])<<56 | uint64(it[i+1])<<48 | uint64(it[i+2])<<40 | uint64(it[i+3])<<32 |
			uint64(it[i+4])<<24 | uint64(it[i+5])<<16 | uint64(it[i+6])<<8 | uint64(it[i+7])
		x ^= w
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// Tree is an incrementally maintained fingerprint tree over a set of
// items. The zero Tree is empty and ready to use. Tree is not
// self-synchronizing: callers guard it with the lock that guards the
// set it mirrors (reads under a shared lock are safe — query methods
// never mutate).
type Tree struct {
	root *node
}

// Len returns the number of items in the set.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.count
}

// Root returns the whole set's fingerprint and count.
func (t *Tree) Root() (Fingerprint, int) {
	if t.root == nil {
		return Fingerprint{}, 0
	}
	return t.root.agg, t.root.count
}

// Add inserts it, reporting whether the set changed (false: already
// present).
func (t *Tree) Add(it Item) bool {
	root, added := add(t.root, it, prio(it))
	t.root = root
	return added
}

func add(n *node, it Item, p uint64) (*node, bool) {
	if n == nil {
		nn := &node{item: it, prio: p}
		nn.pull()
		return nn, true
	}
	c := bytes.Compare(it[:], n.item[:])
	if c == 0 {
		return n, false
	}
	var added bool
	if c < 0 {
		n.left, added = add(n.left, it, p)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	} else {
		n.right, added = add(n.right, it, p)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	n.pull()
	return n, added
}

// Remove deletes it, reporting whether the set changed (false: was not
// present).
func (t *Tree) Remove(it Item) bool {
	root, removed := remove(t.root, it)
	t.root = root
	return removed
}

func remove(n *node, it Item) (*node, bool) {
	if n == nil {
		return nil, false
	}
	c := bytes.Compare(it[:], n.item[:])
	var removed bool
	switch {
	case c < 0:
		n.left, removed = remove(n.left, it)
	case c > 0:
		n.right, removed = remove(n.right, it)
	default:
		// Rotate the node down until it is a leaf, then drop it.
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		case n.left.prio > n.right.prio:
			n = rotateRight(n)
			n.right, removed = remove(n.right, it)
		default:
			n = rotateLeft(n)
			n.left, removed = remove(n.left, it)
		}
	}
	n.pull()
	return n, removed
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.pull()
	l.pull()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.pull()
	r.pull()
	return r
}

// Range boundary convention, shared by Range, Items and Select: a range
// is the half-open [x, y) in lexicographic item order, and a zero y
// means "unbounded above" (so the zero x / zero y pair is the full
// keyspace). The zero item is never excluded by that convention — x is
// inclusive — and never occurs as a real content address.

// inRange reports whether it lies in [x, y).
func inRange(it, x, y Item) bool {
	if bytes.Compare(it[:], x[:]) < 0 {
		return false
	}
	return y == Item{} || bytes.Compare(it[:], y[:]) < 0
}

// Range returns the fingerprint and count of the items in [x, y). The
// walk is read-only and O(log n) expected: whole subtrees inside the
// range contribute their precomputed aggregates.
func (t *Tree) Range(x, y Item) (Fingerprint, int) {
	unboundedY := y == Item{}
	var fp Fingerprint
	count := 0
	var walk func(n *node, loIn, hiIn bool)
	walk = func(n *node, loIn, hiIn bool) {
		if n == nil {
			return
		}
		if loIn && hiIn {
			fp.Xor(n.agg)
			count += n.count
			return
		}
		geX := loIn || bytes.Compare(n.item[:], x[:]) >= 0
		ltY := hiIn || unboundedY || bytes.Compare(n.item[:], y[:]) < 0
		if geX && ltY {
			fp.XorItem(n.item)
			count++
		}
		if geX {
			// Left subtree may straddle x; it is entirely below n, so
			// it inherits n's upper-bound status.
			walk(n.left, loIn, hiIn || ltY)
		}
		if ltY {
			walk(n.right, loIn || geX, hiIn)
		}
	}
	walk(t.root, false, false)
	return fp, count
}

// Items appends the items in [x, y) to dst in ascending order, at most
// max of them (max < 0: all). The walk is read-only.
func (t *Tree) Items(dst []Item, x, y Item, max int) []Item {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || (max >= 0 && len(dst) >= max) {
			return
		}
		if bytes.Compare(n.item[:], x[:]) > 0 {
			walk(n.left)
		}
		if (max < 0 || len(dst) < max) && inRange(n.item, x, y) {
			dst = append(dst, n.item)
		}
		if y == (Item{}) || bytes.Compare(n.item[:], y[:]) < 0 {
			walk(n.right)
		}
	}
	walk(t.root)
	return dst
}

// Select returns the k-th item (0-based) of [x, y); ok is false when the
// range holds k or fewer items. It is the split-point oracle of the
// recursive descent: the k = count/2 item divides a mismatched range
// into halves of known size.
func (t *Tree) Select(x, y Item, k int) (Item, bool) {
	if k < 0 {
		return Item{}, false
	}
	// Rank of x in the whole set, then select by global rank and check
	// the result against y. Both descents are O(log n), read-only.
	target := t.rankOf(x) + k
	it, ok := t.nth(target)
	if !ok || !inRange(it, x, y) {
		return Item{}, false
	}
	return it, true
}

// rankOf counts the items strictly below x.
func (t *Tree) rankOf(x Item) int {
	rank := 0
	for n := t.root; n != nil; {
		if bytes.Compare(n.item[:], x[:]) < 0 {
			rank++
			if n.left != nil {
				rank += n.left.count
			}
			n = n.right
		} else {
			n = n.left
		}
	}
	return rank
}

// nth returns the item of global rank i (0-based, ascending).
func (t *Tree) nth(i int) (Item, bool) {
	n := t.root
	if n == nil || i < 0 || i >= n.count {
		return Item{}, false
	}
	for {
		lc := 0
		if n.left != nil {
			lc = n.left.count
		}
		switch {
		case i < lc:
			n = n.left
		case i == lc:
			return n.item, true
		default:
			i -= lc + 1
			n = n.right
		}
	}
}
