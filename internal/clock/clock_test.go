package clock

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		counter int64
		replica int
	}{
		{0, 0}, {1, 1}, {42, MaxReplica}, {1 << 40, 7},
	}
	for _, c := range cases {
		ts := Pack(c.counter, c.replica)
		counter, replica := Unpack(ts)
		if counter != c.counter || replica != c.replica {
			t.Errorf("round trip (%d, %d) -> (%d, %d)", c.counter, c.replica, counter, replica)
		}
	}
}

func TestPackOrdering(t *testing.T) {
	// Larger counters dominate regardless of replica id.
	if Pack(2, 0) <= Pack(1, MaxReplica) {
		t.Fatal("counter must dominate replica id in comparisons")
	}
	// Equal counters are tie-broken by replica id, so distinct replicas
	// never collide.
	if Pack(5, 1) == Pack(5, 2) {
		t.Fatal("distinct replicas must produce distinct timestamps")
	}
}

func TestNewRejectsBadReplica(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("negative replica id accepted")
	}
	if _, err := New(MaxReplica + 1); err == nil {
		t.Fatal("oversized replica id accepted")
	}
}

func TestTickMonotonic(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	var prev core.Timestamp = -1
	for i := 0; i < 100; i++ {
		ts := c.Tick()
		if ts <= prev {
			t.Fatalf("Tick not strictly increasing: %d after %d", ts, prev)
		}
		prev = ts
	}
	if c.Replica() != 3 {
		t.Fatal("Replica accessor")
	}
}

func TestObserveAdvances(t *testing.T) {
	a, _ := New(1)
	b, _ := New(2)
	for i := 0; i < 50; i++ {
		a.Tick()
	}
	remote := a.Tick()
	b.Observe(remote)
	if got := b.Tick(); got <= remote {
		t.Fatalf("after Observe, Tick (%d) must exceed the observed timestamp (%d)", got, remote)
	}
}

func TestObserveStaleIsNoop(t *testing.T) {
	c, _ := New(1)
	c.Tick()
	high := c.Tick()
	c.Observe(Pack(1, 0)) // stale
	if got := c.Tick(); got <= high {
		t.Fatal("observing a stale timestamp must not rewind the clock")
	}
}

func TestUniqueAcrossReplicasConcurrent(t *testing.T) {
	const replicas = 8
	const ticks = 500
	var mu sync.Mutex
	seen := make(map[core.Timestamp]bool, replicas*ticks)
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		c, _ := New(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]core.Timestamp, 0, ticks)
			for i := 0; i < ticks; i++ {
				local = append(local, c.Tick())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate timestamp %d", ts)
				}
				seen[ts] = true
			}
		}()
	}
	wg.Wait()
}
