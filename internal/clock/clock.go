// Package clock provides the unique, happens-before-respecting timestamps
// the datastore must supply to MRDT operations (§2.1): a Lamport clock
// (Lamport 1978) combined with a replica id, packed into a single
// core.Timestamp so that timestamps are totally ordered and globally
// unique — the store property Ψ_ts.
package clock

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// replicaBits is the width of the replica-id field in a packed timestamp.
const replicaBits = 16

// MaxReplica is the largest representable replica id.
const MaxReplica = 1<<replicaBits - 1

// Pack combines a Lamport counter and a replica id into a timestamp.
// Counters dominate the comparison; replica ids break ties between
// replicas that chose the same counter, giving uniqueness.
func Pack(counter int64, replica int) core.Timestamp {
	return core.Timestamp(counter<<replicaBits | int64(replica))
}

// Unpack splits a packed timestamp.
func Unpack(t core.Timestamp) (counter int64, replica int) {
	return int64(t) >> replicaBits, int(int64(t) & MaxReplica)
}

// Clock is one replica's Lamport clock. The zero value is not usable; use
// New.
type Clock struct {
	mu      sync.Mutex
	replica int
	counter int64
}

// New returns a clock for the given replica id.
func New(replica int) (*Clock, error) {
	if replica < 0 || replica > MaxReplica {
		return nil, fmt.Errorf("clock: replica id %d out of range [0, %d]", replica, MaxReplica)
	}
	return &Clock{replica: replica}, nil
}

// Replica returns the clock's replica id.
func (c *Clock) Replica() int { return c.replica }

// Tick advances the clock and returns a fresh timestamp, strictly greater
// than every timestamp previously returned or observed by this clock.
func (c *Clock) Tick() core.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counter++
	return Pack(c.counter, c.replica)
}

// Now returns the clock's current counter without advancing it — for
// observing a clock's position (e.g. to seed another clock) without
// consuming a timestamp.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counter
}

// Observe applies the Lamport receive rule for a timestamp obtained from
// another replica (e.g. carried by a merged-in state): subsequent local
// timestamps will exceed it.
func (c *Clock) Observe(t core.Timestamp) {
	remote, _ := Unpack(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if remote > c.counter {
		c.counter = remote
	}
}
