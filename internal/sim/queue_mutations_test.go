package sim_test

import (
	"testing"

	"repro/internal/queue"
	"repro/internal/sim"
)

// Mutation tests for the queue merge: each mutant breaks one piece of the
// Appendix B algorithm and the harness must reject it. Together with the
// passing certification of the real implementation (internal/harness),
// these show every component of the merge is load-bearing.

type mutantQueue struct {
	queue.Queue
	merge func(lca, a, b []queue.Pair) []queue.Pair
}

func (m mutantQueue) Merge(lca, a, b queue.State) queue.State {
	return queue.FromSlice(m.merge(lca.ToSlice(), a.ToSlice(), b.ToSlice()))
}

func queueMutantHarness(name string, merge func(lca, a, b []queue.Pair) []queue.Pair) *sim.Harness[queue.State, queue.Op, queue.Val] {
	return &sim.Harness[queue.State, queue.Op, queue.Val]{
		Name:  name,
		Impl:  mutantQueue{merge: merge},
		Spec:  queue.Spec,
		Rsim:  queue.Rsim,
		ValEq: queue.ValEq,
		Ops: []queue.Op{
			{Kind: queue.Enqueue, V: 1},
			{Kind: queue.Enqueue, V: 2},
			{Kind: queue.Dequeue},
		},
		Probes: []queue.Op{{Kind: queue.Dequeue}},
	}
}

func queueCfg() sim.Config {
	return sim.Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 150,
		RandomSteps:      16,
		RandomBranches:   3,
		Seed:             13,
	}
}

// Test-local reimplementations of the merge pieces (the real ones are
// internal to the queue package).
func tDiff(a, l []queue.Pair) []queue.Pair {
	i, j := 0, 0
	for i < len(a) && j < len(l) {
		if l[j].T < a[i].T {
			j++
		} else {
			i++
			j++
		}
	}
	return a[i:]
}

func tUnion(x, y []queue.Pair) []queue.Pair {
	out := make([]queue.Pair, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i].T < y[j].T {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

func tIntersection(l, a, b []queue.Pair) []queue.Pair {
	var out []queue.Pair
	i, j, k := 0, 0, 0
	for i < len(l) && j < len(a) && k < len(b) {
		if l[i].T < a[j].T || l[i].T < b[k].T {
			i++
		} else {
			out = append(out, l[i])
			i++
			j++
			k++
		}
	}
	return out
}

// Sanity: the reassembled correct merge passes, so the mutants below fail
// for their intended reasons and not because the scaffolding is off.
func TestQueueReassembledMergePasses(t *testing.T) {
	h := queueMutantHarness("queue-reassembled", func(l, a, b []queue.Pair) []queue.Pair {
		return append(tIntersection(l, a, b), tUnion(tDiff(a, l), tDiff(b, l))...)
	})
	if rep := h.Certify(queueCfg()); rep.Err != nil {
		t.Fatalf("reassembled merge must pass: %v", rep.Err)
	}
}

// Dropping the intersection loses every element both branches kept.
func TestQueueMutantNoIntersection(t *testing.T) {
	h := queueMutantHarness("queue-no-intersection", func(l, a, b []queue.Pair) []queue.Pair {
		return tUnion(tDiff(a, l), tDiff(b, l))
	})
	mustFail(t, h.Certify(queueCfg()), "Φ_merge")
}

// Treating all of a branch as "new" resurrects elements the other branch
// dequeued and duplicates survivors.
func TestQueueMutantResurrectsDequeued(t *testing.T) {
	h := queueMutantHarness("queue-resurrect", func(l, a, b []queue.Pair) []queue.Pair {
		return tUnion(a, tDiff(b, l))
	})
	mustFail(t, h.Certify(queueCfg()), "Φ_merge")
}

// Concatenating the two diffs instead of interleaving them by timestamp
// breaks the order of concurrent enqueues.
func TestQueueMutantUnorderedUnion(t *testing.T) {
	h := queueMutantHarness("queue-unordered-union", func(l, a, b []queue.Pair) []queue.Pair {
		out := tIntersection(l, a, b)
		out = append(out, tDiff(a, l)...)
		return append(out, tDiff(b, l)...)
	})
	mustFail(t, h.Certify(queueCfg()), "Φ_")
}

// Appending the intersection after the new elements puts old elements
// behind new ones, breaking FIFO.
func TestQueueMutantIntersectionLast(t *testing.T) {
	h := queueMutantHarness("queue-intersection-last", func(l, a, b []queue.Pair) []queue.Pair {
		return append(tUnion(tDiff(a, l), tDiff(b, l)), tIntersection(l, a, b)...)
	})
	mustFail(t, h.Certify(queueCfg()), "Φ_")
}
