package sim

import (
	"fmt"

	"repro/internal/core"
)

// runner drives one certification run, accumulating counters and the
// current action trace for failure reports.
type runner[S, Op, Val any] struct {
	h     *Harness[S, Op, Val]
	rep   *Report
	trace []string
}

func (r *runner[S, Op, Val]) fail(obligation, format string, args ...any) error {
	trace := make([]string, len(r.trace))
	copy(trace, r.trace)
	return &Failure{Obligation: obligation, Trace: trace, Detail: fmt.Sprintf(format, args...)}
}

func (r *runner[S, Op, Val]) probes() []Op {
	if r.h.Probes != nil {
		return r.h.Probes
	}
	return r.h.Ops
}

// stepDo performs Do(b, op) on the LTS, checking Φ_do and Φ_spec around it.
func (r *runner[S, Op, Val]) stepDo(l *core.LTS[S, Op, Val], b core.BranchID, op Op) error {
	r.trace = append(r.trace, fmt.Sprintf("do(b%d, %+v)", b, op))
	pre, err := l.Abstract(b)
	if err != nil {
		return err
	}
	preConc, err := l.Concrete(b)
	if err != nil {
		return err
	}
	pre = pre.Clone() // snapshot: the LTS mutates nothing, but be explicit

	// Premises: the inductive hypothesis R_sim(I, σ) and the store
	// guarantee Ψ_ts(I).
	r.rep.Obligations++
	if !r.h.Rsim(pre, preConc) {
		return r.fail("Rsim-pre(do)", "simulation relation does not hold before do")
	}
	r.rep.Obligations++
	if !core.PsiTS(pre) {
		return r.fail("Ψ_ts(do)", "store produced an abstract state violating Ψ_ts")
	}

	rval, _, err := l.Do(b, op)
	if err != nil {
		return err
	}
	post, _ := l.Abstract(b)
	postConc, _ := l.Concrete(b)

	// Φ_spec: the implementation's return value matches F_τ on the
	// pre-state abstract state (Definition 3.2).
	r.rep.Obligations++
	if want := r.h.Spec(op, pre); !r.h.ValEq(rval, want) {
		return r.fail("Φ_spec", "op %+v returned %+v, specification requires %+v", op, rval, want)
	}
	// Φ_do: R_sim is re-established on the post states.
	r.rep.Obligations++
	if !r.h.Rsim(post, postConc) {
		return r.fail("Φ_do", "simulation relation broken by op %+v", op)
	}
	return r.checkInvariant(post)
}

// stepFork performs CreateBranch(src); the new branch copies both states,
// so R_sim transfers — checked anyway.
func (r *runner[S, Op, Val]) stepFork(l *core.LTS[S, Op, Val], src core.BranchID) error {
	r.trace = append(r.trace, fmt.Sprintf("fork(b%d)", src))
	nb, err := l.CreateBranch(src)
	if err != nil {
		return err
	}
	abs, _ := l.Abstract(nb)
	conc, _ := l.Concrete(nb)
	r.rep.Obligations++
	if !r.h.Rsim(abs, conc) {
		return r.fail("Rsim(fork)", "simulation relation broken by branch creation")
	}
	return nil
}

// stepMerge performs Merge(dst, src), checking the premises and conclusion
// of Φ_merge.
func (r *runner[S, Op, Val]) stepMerge(l *core.LTS[S, Op, Val], dst, src core.BranchID) error {
	r.trace = append(r.trace, fmt.Sprintf("merge(b%d <- b%d)", dst, src))
	ia, err := l.Abstract(dst)
	if err != nil {
		return err
	}
	ib, err := l.Abstract(src)
	if err != nil {
		return err
	}
	ia, ib = ia.Clone(), ib.Clone()
	sa, _ := l.Concrete(dst)
	sb, _ := l.Concrete(src)
	lcaAbs, lcaConc, err := l.LCAOf(dst, src)
	if err != nil {
		return err
	}
	lcaAbs = lcaAbs.Clone()

	// Premises of Φ_merge: R_sim on both branches and on the LCA, Ψ_ts of
	// the merged abstract state, Ψ_lca of the LCA.
	r.rep.Obligations++
	if !r.h.Rsim(ia, sa) || !r.h.Rsim(ib, sb) {
		return r.fail("Rsim-pre(merge)", "simulation relation does not hold on a branch before merge")
	}
	r.rep.Obligations++
	if !r.h.Rsim(lcaAbs, lcaConc) {
		return r.fail("Rsim-lca(merge)", "simulation relation does not hold on the LCA")
	}
	r.rep.Obligations++
	if !lcaAbs.SameEvents(ia.LCAAbs(ib)) {
		return r.fail("lca#", "store LCA's event set differs from lca#")
	}
	r.rep.Obligations++
	if !core.PsiLCA(lcaAbs, ia, ib) {
		return r.fail("Ψ_lca", "store produced an LCA violating Ψ_lca")
	}
	mergedAbs := ia.MergeAbs(ib)
	r.rep.Obligations++
	if !core.PsiTS(mergedAbs) {
		return r.fail("Ψ_ts(merge)", "merged abstract state violates Ψ_ts")
	}

	if err := l.Merge(dst, src); err != nil {
		return err
	}
	post, _ := l.Abstract(dst)
	postConc, _ := l.Concrete(dst)

	// Conclusion of Φ_merge.
	r.rep.Obligations++
	if !r.h.Rsim(post, postConc) {
		return r.fail("Φ_merge", "simulation relation broken by merge")
	}
	return r.checkInvariant(post)
}

// checkCon checks Φ_con / convergence modulo observable behaviour
// (Definition 3.5) across every pair of branches: equal abstract states
// must yield observationally equivalent concrete states.
func (r *runner[S, Op, Val]) checkCon(l *core.LTS[S, Op, Val]) error {
	branches := l.Branches()
	for i := 0; i < len(branches); i++ {
		for j := i + 1; j < len(branches); j++ {
			ai, _ := l.Abstract(branches[i])
			aj, _ := l.Abstract(branches[j])
			if !ai.SameEvents(aj) {
				continue
			}
			ci, _ := l.Concrete(branches[i])
			cj, _ := l.Concrete(branches[j])
			r.rep.Obligations++
			if !core.ObsEquiv(r.h.Impl, r.probes(), r.h.ValEq, ci, cj, l.Clock()) {
				return r.fail("Φ_con", "branches b%d and b%d share an abstract state but are distinguishable", branches[i], branches[j])
			}
		}
	}
	return nil
}

// checkVirtualConvergence covers Φ_con on genuinely different merge
// histories without mutating the LTS: for every pair of branches whose
// merge is enabled in both directions, it computes the three-way merge
// with both argument orders. Both results correspond to the same abstract
// state (merge# is a set union), so they must satisfy R_sim against it and
// be observationally equivalent — this is exactly the situation of two
// replicas converging to the same history through different merges, the
// paper's motivation for convergence modulo observable behaviour
// (Definition 3.5: e.g. the two OR-set-spacetime trees may balance
// differently yet must read identically).
func (r *runner[S, Op, Val]) checkVirtualConvergence(l *core.LTS[S, Op, Val]) error {
	branches := l.Branches()
	for i := 0; i < len(branches); i++ {
		for j := i + 1; j < len(branches); j++ {
			x, y := branches[i], branches[j]
			if !r.mergeEnabled(l, x, y) || !r.mergeEnabled(l, y, x) {
				continue
			}
			_, lcaConc, err := l.LCAOf(x, y)
			if err != nil {
				continue
			}
			ax, _ := l.Abstract(x)
			ay, _ := l.Abstract(y)
			cx, _ := l.Concrete(x)
			cy, _ := l.Concrete(y)
			merged := ax.MergeAbs(ay)
			m1 := l.Impl().Merge(lcaConc, cx, cy)
			m2 := l.Impl().Merge(lcaConc, cy, cx)
			r.rep.Obligations += 3
			if !r.h.Rsim(merged, m1) {
				return r.fail("Φ_merge", "simulation relation broken by virtual merge b%d<-b%d", x, y)
			}
			if !r.h.Rsim(merged, m2) {
				return r.fail("Φ_merge", "simulation relation broken by virtual merge b%d<-b%d", y, x)
			}
			if !core.ObsEquiv(r.h.Impl, r.probes(), r.h.ValEq, m1, m2, l.Clock()) {
				return r.fail("Φ_con", "merges of b%d and b%d in opposite orders are distinguishable", x, y)
			}
		}
	}
	return nil
}

func (r *runner[S, Op, Val]) checkInvariant(abs *core.AbstractState[Op, Val]) error {
	if r.h.Invariant == nil {
		return nil
	}
	r.rep.Obligations++
	if !r.h.Invariant(abs) {
		return r.fail("invariant", "data-type invariant violated on abstract state")
	}
	return nil
}
