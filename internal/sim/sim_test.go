package sim_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/orset"
	"repro/internal/sim"
)

// A certification harness that never rejects anything is worthless, so
// these tests plant known-incorrect implementations and require the
// harness to flag them with the right obligation.

func smallCfg() sim.Config {
	return sim.Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 100,
		RandomSteps:      20,
		RandomBranches:   3,
		Seed:             3,
	}
}

func mustFail(t *testing.T, rep sim.Report, obligation string) {
	t.Helper()
	if rep.Err == nil {
		t.Fatalf("%s: harness accepted a buggy implementation", rep.Name)
	}
	var f *sim.Failure
	if !errors.As(rep.Err, &f) {
		t.Fatalf("%s: unexpected error type: %v", rep.Name, rep.Err)
	}
	if !strings.Contains(f.Obligation, obligation) {
		t.Fatalf("%s: violated %q, expected %q (detail: %s)", rep.Name, f.Obligation, obligation, f.Detail)
	}
}

// doubleCountingCounter merges with a + b, forgetting to subtract the LCA:
// increments before the fork are counted twice.
type doubleCountingCounter struct{ counter.IncCounter }

func (doubleCountingCounter) Merge(_, a, b int64) int64 { return a + b }

func TestHarnessCatchesDoubleCountingMerge(t *testing.T) {
	h := &sim.Harness[int64, counter.Op, counter.Val]{
		Name:  "buggy-counter",
		Impl:  doubleCountingCounter{},
		Spec:  counter.IncSpec,
		Rsim:  counter.IncRsim,
		ValEq: counter.ValEq,
		Ops:   []counter.Op{{Kind: counter.Read}, {Kind: counter.Inc, N: 1}},
	}
	mustFail(t, h.Certify(smallCfg()), "Φ_merge")
}

// offByOneCounter returns s+1 from reads.
type offByOneCounter struct{ counter.IncCounter }

func (offByOneCounter) Do(op counter.Op, s int64, t core.Timestamp) (int64, counter.Val) {
	next, v := (counter.IncCounter{}).Do(op, s, t)
	if op.Kind == counter.Read {
		return next, v + 1
	}
	return next, v
}

func TestHarnessCatchesWrongReturnValue(t *testing.T) {
	h := &sim.Harness[int64, counter.Op, counter.Val]{
		Name:  "off-by-one-counter",
		Impl:  offByOneCounter{},
		Spec:  counter.IncSpec,
		Rsim:  counter.IncRsim,
		ValEq: counter.ValEq,
		Ops:   []counter.Op{{Kind: counter.Read}, {Kind: counter.Inc, N: 1}},
	}
	mustFail(t, h.Certify(smallCfg()), "Φ_spec")
}

// removeWinsSet merges like the OR-set but lets a remove win against a
// concurrent add: it drops any element of a branch diff that the other
// branch does not also carry — violating the add-wins specification.
type removeWinsSet struct{ orset.OrSet }

func (removeWinsSet) Merge(lca, a, b orset.State) orset.State {
	var out orset.State
	for _, p := range a {
		inB := false
		for _, q := range b {
			if p == q {
				inB = true
				break
			}
		}
		if inB {
			out = append(out, p)
		}
	}
	return out
}

func TestHarnessCatchesRemoveWinsMerge(t *testing.T) {
	h := &sim.Harness[orset.State, orset.Op, orset.Val]{
		Name:  "remove-wins-set",
		Impl:  removeWinsSet{},
		Spec:  orset.Spec,
		Rsim:  orset.Rsim,
		ValEq: orset.ValEq,
		Ops: []orset.Op{
			{Kind: orset.Read},
			{Kind: orset.Add, E: 1},
			{Kind: orset.Remove, E: 1},
		},
	}
	mustFail(t, h.Certify(smallCfg()), "Φ_merge")
}

// disableWinsFlag resolves concurrent enable/disable to disabled.
type disableWinsFlag struct{ ewflag.Flag }

func (disableWinsFlag) Merge(lca, a, b ewflag.State) ewflag.State {
	return ewflag.State{
		Enables: a.Enables + b.Enables - lca.Enables,
		Flag:    a.Flag && b.Flag,
	}
}

func TestHarnessCatchesDisableWinsMerge(t *testing.T) {
	h := &sim.Harness[ewflag.State, ewflag.Op, ewflag.Val]{
		Name:  "disable-wins-flag",
		Impl:  disableWinsFlag{},
		Spec:  ewflag.Spec,
		Rsim:  ewflag.Rsim,
		ValEq: ewflag.ValEq,
		Ops: []ewflag.Op{
			{Kind: ewflag.Read},
			{Kind: ewflag.Enable},
			{Kind: ewflag.Disable},
		},
	}
	mustFail(t, h.Certify(smallCfg()), "Φ_merge")
}

// divergentReadCounter is convergent in state but its read depends on a
// timestamp parity, breaking observational determinism — Φ_con must not
// fire (states equal ⇒ reads equal given same probe timestamp), but Φ_spec
// must.
type divergentReadCounter struct{ counter.IncCounter }

func (divergentReadCounter) Do(op counter.Op, s int64, t core.Timestamp) (int64, counter.Val) {
	if op.Kind == counter.Read && t%2 == 1 {
		return s, s + 100
	}
	return (counter.IncCounter{}).Do(op, s, t)
}

func TestHarnessCatchesTimestampDependentRead(t *testing.T) {
	h := &sim.Harness[int64, counter.Op, counter.Val]{
		Name:  "parity-counter",
		Impl:  divergentReadCounter{},
		Spec:  counter.IncSpec,
		Rsim:  counter.IncRsim,
		ValEq: counter.ValEq,
		Ops:   []counter.Op{{Kind: counter.Read}, {Kind: counter.Inc, N: 1}},
	}
	rep := h.Certify(smallCfg())
	if rep.Err == nil {
		t.Fatal("harness accepted a read that depends on the timestamp")
	}
}

// nonConvergentSet stores branch-private garbage that reads expose:
// concrete states with equal abstract states differ observably.
type nonConvergentSet struct{ orset.OrSet }

func (nonConvergentSet) Merge(lca, a, b orset.State) orset.State {
	merged := (orset.OrSet{}).Merge(lca, a, b)
	// Inject a bogus element keyed off the receiving branch's state size,
	// so the two sides of a mutual merge disagree.
	bogus := orset.Pair{E: int64(9000 + len(a)), T: -1}
	return append(merged, bogus)
}

func TestHarnessCatchesNonConvergence(t *testing.T) {
	h := &sim.Harness[orset.State, orset.Op, orset.Val]{
		Name:  "non-convergent-set",
		Impl:  nonConvergentSet{},
		Spec:  orset.Spec,
		Rsim:  func(_ *core.AbstractState[orset.Op, orset.Val], _ orset.State) bool { return true },
		ValEq: orset.ValEq,
		Ops: []orset.Op{
			{Kind: orset.Read},
			{Kind: orset.Add, E: 1},
			{Kind: orset.Add, E: 2},
		},
		Probes: []orset.Op{{Kind: orset.Read}},
	}
	// Rsim is rigged to true so only Φ_con can catch the bug.
	mustFail(t, h.Certify(smallCfg()), "Φ_con")
}

// TestReportCounters sanity-checks the report bookkeeping.
func TestReportCounters(t *testing.T) {
	h := &sim.Harness[int64, counter.Op, counter.Val]{
		Name:  "inc-counter",
		Impl:  counter.IncCounter{},
		Spec:  counter.IncSpec,
		Rsim:  counter.IncRsim,
		ValEq: counter.ValEq,
		Ops:   []counter.Op{{Kind: counter.Read}, {Kind: counter.Inc, N: 1}},
	}
	cfg := sim.Config{MaxBranches: 2, MaxSteps: 2, RandomExecutions: 5, RandomSteps: 5, RandomBranches: 2, Seed: 1}
	rep := h.Certify(cfg)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Executions <= 5 {
		t.Fatalf("expected exhaustive executions on top of the 5 random ones, got %d", rep.Executions)
	}
	if rep.Obligations < rep.Transitions {
		t.Fatalf("each transition checks several obligations: %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Fatal("duration must be positive")
	}
}
