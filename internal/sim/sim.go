// Package sim is the certification harness: the executable counterpart of
// the paper's F*/SMT verification (§4). For a data type implementation, a
// declarative specification and a replication-aware simulation relation, it
// explores executions of the replicated store's labelled transition system
// (§3, Figure 3) — exhaustively up to configurable bounds, and randomly
// with seeded walks — and checks, at every transition, the proof
// obligations of Table 2:
//
//	Φ_do:    R_sim is preserved by every operation;
//	Φ_merge: R_sim is preserved by every three-way merge (premising Ψ_ts
//	         and Ψ_lca, which the store guarantees and the harness
//	         re-checks);
//	Φ_spec:  every return value matches the specification F_τ applied to
//	         the branch's abstract state;
//	Φ_con:   branches with equal abstract states are observationally
//	         equivalent (convergence modulo observable behaviour,
//	         Definition 3.5).
//
// Where the paper obtains ∀-quantified theorems from an SMT solver, this
// harness obtains exhaustive coverage of the bounded state space plus
// randomized coverage beyond it — certification by bounded model checking,
// the standard substitution when the host language has no proof tooling.
package sim

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Harness bundles everything needed to certify one MRDT.
type Harness[S, Op, Val any] struct {
	// Name identifies the data type in reports.
	Name string
	// Impl is the implementation under certification.
	Impl core.MRDT[S, Op, Val]
	// Spec is the declarative specification F_τ.
	Spec core.Spec[Op, Val]
	// Rsim is the replication-aware simulation relation.
	Rsim core.Rsim[S, Op, Val]
	// ValEq compares return values.
	ValEq core.ValEq[Val]
	// Ops is the operation alphabet used to generate executions.
	Ops []Op
	// Probes are the operations used for observational-equivalence checks
	// (Definition 3.4). If nil, Ops is used.
	Probes []Op
	// Invariant, if non-nil, is an additional predicate checked on every
	// abstract state the store produces (e.g. the queue axioms of §6.2).
	Invariant func(abs *core.AbstractState[Op, Val]) bool
}

// Config bounds the exploration.
type Config struct {
	// MaxBranches bounds the number of branches in exhaustive exploration.
	MaxBranches int
	// MaxSteps bounds the number of transitions per execution.
	MaxSteps int
	// RandomExecutions is the number of random walks to run after the
	// exhaustive phase.
	RandomExecutions int
	// RandomSteps is the length of each random walk.
	RandomSteps int
	// RandomBranches bounds branches during random walks.
	RandomBranches int
	// Seed seeds the random phase; runs are reproducible.
	Seed int64
}

// DefaultConfig returns bounds that finish in a few seconds for the simple
// data types: exhaustive to depth 4 over 2 branches, plus 300 random walks
// of 24 steps over up to 4 branches.
func DefaultConfig() Config {
	return Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 300,
		RandomSteps:      24,
		RandomBranches:   4,
		Seed:             1,
	}
}

// Report summarizes one certification run; it supplies the rows of
// Table 3′ (the reproduction's analogue of the paper's Table 3).
type Report struct {
	Name        string
	Executions  int           // complete executions explored
	Transitions int           // LTS transitions taken
	Obligations int           // individual Φ/Ψ checks performed
	Duration    time.Duration // wall-clock checking time
	Err         error         // nil if every obligation held
}

// Failure describes a violated obligation, including the action trace that
// reached it.
type Failure struct {
	Obligation string
	Trace      []string
	Detail     string
}

// Error formats the failure with its trace.
func (f *Failure) Error() string {
	return fmt.Sprintf("obligation %s violated: %s\n  trace: %v", f.Obligation, f.Detail, f.Trace)
}
