package sim

import (
	"math/rand"
	"time"

	"repro/internal/core"
)

// Certify explores the store LTS for the harness's data type and checks
// every proof obligation at every transition. It returns a report whose
// Err is nil iff all obligations held on all explored executions.
//
// Exploration stays within the paper's verified envelope: merge
// transitions are taken only when the store property Ψ_lca holds for the
// pair of branches, because Ψ_lca is a premise of the Φ_merge obligation
// (Table 2). Merges outside the envelope are the store's responsibility
// to avoid (see internal/store), not the data type's to survive.
func (h *Harness[S, Op, Val]) Certify(cfg Config) Report {
	start := time.Now()
	rep := Report{Name: h.Name}
	r := &runner[S, Op, Val]{h: h, rep: &rep}

	l := core.NewLTS(h.Impl)
	err := r.dfs(l, cfg.MaxSteps, cfg.MaxBranches)
	if err == nil {
		err = r.random(cfg)
	}
	rep.Duration = time.Since(start)
	rep.Err = err
	return rep
}

// action is one LTS transition choice during exploration.
type action[Op any] struct {
	kind   int // 0 = do, 1 = fork, 2 = merge
	branch core.BranchID
	src    core.BranchID
	op     Op
}

// enabled enumerates the transitions available from the current LTS state.
// Merges are offered only when the LCA version exists, the branches'
// abstract states differ (a merge of identical states adds nothing), and
// Ψ_lca holds.
func (r *runner[S, Op, Val]) enabled(l *core.LTS[S, Op, Val], maxBranches int) []action[Op] {
	var out []action[Op]
	branches := l.Branches()
	for _, b := range branches {
		for _, op := range r.h.Ops {
			out = append(out, action[Op]{kind: 0, branch: b, op: op})
		}
	}
	if len(branches) < maxBranches {
		for _, b := range branches {
			out = append(out, action[Op]{kind: 1, branch: b})
		}
	}
	for _, d := range branches {
		for _, s := range branches {
			if d == s || !r.mergeEnabled(l, d, s) {
				continue
			}
			out = append(out, action[Op]{kind: 2, branch: d, src: s})
		}
	}
	return out
}

func (r *runner[S, Op, Val]) mergeEnabled(l *core.LTS[S, Op, Val], dst, src core.BranchID) bool {
	if !l.CanMerge(dst, src) || !l.PsiLCASound(dst, src) {
		return false
	}
	ad, _ := l.Abstract(dst)
	as, _ := l.Abstract(src)
	return !ad.SameEvents(as)
}

func (r *runner[S, Op, Val]) apply(l *core.LTS[S, Op, Val], a action[Op]) error {
	var err error
	switch a.kind {
	case 0:
		err = r.stepDo(l, a.branch, a.op)
	case 1:
		err = r.stepFork(l, a.branch)
	default:
		err = r.stepMerge(l, a.branch, a.src)
	}
	r.rep.Transitions++
	if err != nil {
		return err
	}
	if err := r.checkCon(l); err != nil {
		return err
	}
	return r.checkVirtualConvergence(l)
}

// dfs exhaustively explores every execution of at most stepsLeft further
// transitions, cloning the LTS at each choice point.
func (r *runner[S, Op, Val]) dfs(l *core.LTS[S, Op, Val], stepsLeft, maxBranches int) error {
	if stepsLeft == 0 {
		r.rep.Executions++
		return nil
	}
	for _, a := range r.enabled(l, maxBranches) {
		l2 := l.Clone()
		depth := len(r.trace)
		if err := r.apply(l2, a); err != nil {
			return err
		}
		if err := r.dfs(l2, stepsLeft-1, maxBranches); err != nil {
			return err
		}
		r.trace = r.trace[:depth]
	}
	return nil
}

// random runs cfg.RandomExecutions seeded random walks: operations on
// random branches (~65% of steps), forks while below the branch bound
// (~15%), and Ψ_lca-sound merges between divergent branches (~20%).
// Virtual convergence checks after every step cover Φ_con on both merge
// argument orders without growing the branch set.
func (r *runner[S, Op, Val]) random(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for exec := 0; exec < cfg.RandomExecutions; exec++ {
		l := core.NewLTS(r.h.Impl)
		r.trace = r.trace[:0]
		for step := 0; step < cfg.RandomSteps; step++ {
			if err := r.randomStep(l, rng, cfg); err != nil {
				return err
			}
		}
		r.rep.Executions++
	}
	return nil
}

func (r *runner[S, Op, Val]) randomStep(l *core.LTS[S, Op, Val], rng *rand.Rand, cfg Config) error {
	branches := l.Branches()
	b := branches[rng.Intn(len(branches))]
	roll := rng.Intn(100)
	doOp := func() error {
		op := r.h.Ops[rng.Intn(len(r.h.Ops))]
		return r.stepDo(l, b, op)
	}
	var err error
	switch {
	case roll < 65:
		err = doOp()
	case roll < 80 && len(branches) < cfg.RandomBranches:
		err = r.stepFork(l, b)
	case len(branches) > 1:
		d := branches[rng.Intn(len(branches))]
		if d != b && r.mergeEnabled(l, d, b) {
			err = r.stepMerge(l, d, b)
		} else {
			err = doOp()
		}
	default:
		err = doOp()
	}
	r.rep.Transitions++
	if err != nil {
		return err
	}
	if err := r.checkCon(l); err != nil {
		return err
	}
	return r.checkVirtualConvergence(l)
}
