package chat_test

import (
	"testing"

	"repro/internal/chat"
	"repro/internal/core"
	"repro/internal/mlog"
	"repro/internal/store"
	"repro/internal/wire"
)

func send(t *testing.T, impl chat.Chat, s chat.State, ch, msg string, ts core.Timestamp) chat.State {
	t.Helper()
	next, _ := impl.Do(chat.Op{Kind: chat.Send, Ch: ch, Msg: msg}, s, ts)
	return next
}

func read(t *testing.T, impl chat.Chat, s chat.State, ch string) []mlog.Entry {
	t.Helper()
	_, v := impl.Do(chat.Op{Kind: chat.Read, Ch: ch}, s, 1<<40)
	return v.Log
}

func TestChatSendRead(t *testing.T) {
	var impl chat.Chat
	s := impl.Init()
	s = send(t, impl, s, "#go", "hello", 1)
	s = send(t, impl, s, "#ml", "bonjour", 2)
	s = send(t, impl, s, "#go", "world", 3)
	log := read(t, impl, s, "#go")
	if len(log) != 2 || log[0].Msg != "world" || log[1].Msg != "hello" {
		t.Fatalf("#go log = %v (want newest first)", log)
	}
	if got := read(t, impl, s, "#ml"); len(got) != 1 || got[0].Msg != "bonjour" {
		t.Fatalf("#ml log = %v", got)
	}
	if got := read(t, impl, s, "#empty"); len(got) != 0 {
		t.Fatalf("#empty log = %v", got)
	}
}

func TestChatMergeInterleavesChannels(t *testing.T) {
	var impl chat.Chat
	lca := impl.Init()
	lca = send(t, impl, lca, "#go", "base", 1)
	a := send(t, impl, lca, "#go", "from-a", 3)
	a = send(t, impl, a, "#ml", "ml-a", 4)
	b := send(t, impl, lca, "#go", "from-b", 2)
	m := impl.Merge(lca, a, b)
	log := read(t, impl, m, "#go")
	if len(log) != 3 || log[0].Msg != "from-a" || log[1].Msg != "from-b" || log[2].Msg != "base" {
		t.Fatalf("#go merged log = %v", log)
	}
	if got := read(t, impl, m, "#ml"); len(got) != 1 || got[0].Msg != "ml-a" {
		t.Fatalf("#ml merged log = %v", got)
	}
}

func TestChatSpecMatchesFigure6(t *testing.T) {
	// Build an abstract chat execution with a concurrent send and check the
	// spec orders by timestamp, newest first, per channel.
	h := core.NewHistory[chat.Op, chat.Val]()
	s1 := h.Append(chat.Op{Kind: chat.Send, Ch: "#go", Msg: "one"}, chat.Val{}, 1, nil)
	s2 := h.Append(chat.Op{Kind: chat.Send, Ch: "#go", Msg: "two"}, chat.Val{}, 2, nil)
	s3 := h.Append(chat.Op{Kind: chat.Send, Ch: "#ml", Msg: "other"}, chat.Val{}, 3, []core.EventID{s1, s2})
	abs := core.StateOf(h, []core.EventID{s1, s2, s3})
	v := chat.Spec(chat.Op{Kind: chat.Read, Ch: "#go"}, abs)
	if len(v.Log) != 2 || v.Log[0].Msg != "two" || v.Log[1].Msg != "one" {
		t.Fatalf("spec #go = %v", v.Log)
	}
	if v := chat.Spec(chat.Op{Kind: chat.Read, Ch: "#ml"}, abs); len(v.Log) != 1 {
		t.Fatalf("spec #ml = %v", v.Log)
	}
}

func TestChatRsim(t *testing.T) {
	var impl chat.Chat
	h := core.NewHistory[chat.Op, chat.Val]()
	s1 := h.Append(chat.Op{Kind: chat.Send, Ch: "#go", Msg: "one"}, chat.Val{}, 1, nil)
	abs := core.StateOf(h, []core.EventID{s1})
	good, _ := impl.Do(chat.Op{Kind: chat.Send, Ch: "#go", Msg: "one"}, impl.Init(), 1)
	if !chat.Rsim(abs, good) {
		t.Fatal("Rsim must accept the faithful chat state")
	}
	bad, _ := impl.Do(chat.Op{Kind: chat.Send, Ch: "#go", Msg: "one"}, impl.Init(), 2)
	if chat.Rsim(abs, bad) {
		t.Fatal("Rsim must reject a wrong message timestamp")
	}
}

// TestChatOnStore runs a three-replica chat session over the Git-like
// store and checks all replicas converge to identical channel logs.
func TestChatOnStore(t *testing.T) {
	st := store.New[chat.State, chat.Op, chat.Val](chat.Chat{}, wire.Chat{}, "alice")
	if err := st.Fork("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := st.Fork("alice", "carol"); err != nil {
		t.Fatal(err)
	}
	st.Apply("alice", chat.Op{Kind: chat.Send, Ch: "#pl", Msg: "alice: hi"})
	st.Apply("bob", chat.Op{Kind: chat.Send, Ch: "#pl", Msg: "bob: hey"})
	st.Apply("carol", chat.Op{Kind: chat.Send, Ch: "#sys", Msg: "carol: boot"})
	// Gossip until everyone has everything.
	for _, pair := range [][2]string{{"alice", "bob"}, {"bob", "carol"}, {"alice", "bob"}, {"alice", "carol"}} {
		if err := st.Sync(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	var logs []string
	for _, replica := range []string{"alice", "bob", "carol"} {
		v, err := st.Apply(replica, chat.Op{Kind: chat.Read, Ch: "#pl"})
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Log) != 2 {
			t.Fatalf("%s sees %d messages in #pl, want 2", replica, len(v.Log))
		}
		logs = append(logs, v.Log[0].Msg+"|"+v.Log[1].Msg)
	}
	if logs[0] != logs[1] || logs[1] != logs[2] {
		t.Fatalf("replicas disagree on #pl: %v", logs)
	}
}
