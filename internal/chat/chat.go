// Package chat implements the decentralised IRC-style chat application of
// §5.1: channels map to mergeable logs of messages in reverse chronological
// order. It is a thin wrapper over the α-map MRDT instantiated with the
// mergeable log (Figure 10) — its implementation, specification and
// simulation relation are all obtained compositionally, which is the point
// of §5.
package chat

import (
	"repro/internal/alphamap"
	"repro/internal/core"
	"repro/internal/mlog"
)

// OpKind distinguishes chat operations.
type OpKind int

// Chat operations.
const (
	Read OpKind = iota // read a channel's log, newest first
	Send               // post a message to a channel
)

// Op is a chat operation on channel Ch.
type Op struct {
	Kind OpKind
	Ch   string
	Msg  string
}

// Val is an operation's return value: the channel log for Read, nil for
// Send.
type Val = mlog.Val

// ValEq compares return values.
func ValEq(a, b Val) bool { return mlog.ValEq(a, b) }

// State is the chat state: an α-map from channel names to mergeable logs.
type State = alphamap.State[mlog.State]

// logMap is the underlying log-map MRDT (D_log-map in Figure 10).
var logMap = alphamap.New[mlog.State, mlog.Op, mlog.Val](mlog.Log{})

// Chat is the chat MRDT: D_chat = D_log-map with send/read translated to
// set/get of append/read (Figure 10).
type Chat struct{}

var _ core.MRDT[State, Op, Val] = Chat{}

// Init returns the empty chat (no channels).
func (Chat) Init() State { return logMap.Init() }

// Do applies op at state s with timestamp t.
func (Chat) Do(op Op, s State, t core.Timestamp) (State, Val) {
	return logMap.Do(translate(op), s, t)
}

// Merge merges channel-wise with the mergeable log's merge.
func (Chat) Merge(lca, a, b State) State { return logMap.Merge(lca, a, b) }

func translate(op Op) alphamap.Op[mlog.Op] {
	switch op.Kind {
	case Send:
		return alphamap.Op[mlog.Op]{K: op.Ch, Inner: mlog.Op{Kind: mlog.Append, Msg: op.Msg}}
	default:
		return alphamap.Op[mlog.Op]{Get: true, K: op.Ch, Inner: mlog.Op{Kind: mlog.Read}}
	}
}

// Spec is F_chat (Figure 6): rd(ch) returns exactly the messages sent to
// ch, in reverse chronological order — derived as
// F_log-map(get(ch, rd), I) (Figure 10).
func Spec(op Op, abs *core.AbstractState[Op, Val]) Val {
	inner := alphamap.Spec[mlog.Op, mlog.Val](mlog.Spec)
	// Re-view the chat execution as a log-map execution.
	h := core.NewHistory[alphamap.Op[mlog.Op], mlog.Val]()
	idOf := make(map[core.EventID]core.EventID)
	var ids []core.EventID
	evs := abs.Events()
	for _, e := range evs {
		var preds []core.EventID
		for _, f := range evs {
			if abs.Vis(f, e) {
				preds = append(preds, idOf[f])
			}
		}
		id := h.Append(translate(abs.Oper(e)), abs.Rval(e), abs.Time(e), preds)
		idOf[e] = id
		ids = append(ids, id)
	}
	return inner(translate(op), core.StateOf(h, ids))
}

// Rsim is the chat simulation relation, derived from the α-map relation
// instantiated with the mergeable log's.
func Rsim(abs *core.AbstractState[Op, Val], s State) bool {
	inner := alphamap.Rsim[mlog.State, mlog.Op, mlog.Val](logMap, mlog.Rsim)
	h := core.NewHistory[alphamap.Op[mlog.Op], mlog.Val]()
	idOf := make(map[core.EventID]core.EventID)
	var ids []core.EventID
	evs := abs.Events()
	for _, e := range evs {
		var preds []core.EventID
		for _, f := range evs {
			if abs.Vis(f, e) {
				preds = append(preds, idOf[f])
			}
		}
		id := h.Append(translate(abs.Oper(e)), abs.Rval(e), abs.Time(e), preds)
		idOf[e] = id
		ids = append(ids, id)
	}
	return inner(core.StateOf(h, ids), s)
}
