package faultnet

// Unit tests of the fault layer itself, over tiny echo servers: clean
// pass-through, owner resolution, deterministic drops, partitions that
// sever live connections and heal, asymmetric blocks, corruption, cuts,
// latency pacing, and the delivery tap.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// echoNode listens on a transport and echoes every byte back.
func echoNode(t *testing.T, n *Net, name string) net.Listener {
	t.Helper()
	ln, err := n.Transport(name).Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	return ln
}

func dial(t *testing.T, n *Net, from, addr string) net.Conn {
	t.Helper()
	conn, err := n.Transport(from).Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func roundTrip(conn net.Conn, msg []byte) ([]byte, error) {
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		return nil, err
	}
	return got, nil
}

func TestCleanLinkPassesThrough(t *testing.T) {
	n := New(1)
	ln := echoNode(t, n, "b")
	conn := dial(t, n, "a", ln.Addr().String())
	msg := []byte("hello over a perfect link")
	got, err := roundTrip(conn, msg)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestDialDropRefusesImmediately(t *testing.T) {
	n := New(7)
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{DropRate: 1})
	start := time.Now()
	_, err := n.Transport("a").Dial(context.Background(), ln.Addr().String())
	if err == nil {
		t.Fatal("dial over an always-drop link succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("drop error %v is not a net.Error", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatalf("reset-style drop took %v, want prompt refusal", time.Since(start))
	}
	// An unconfigured pair is unaffected.
	if _, err := roundTrip(dial(t, n, "c", ln.Addr().String()), []byte("ok")); err != nil {
		t.Fatalf("bystander pair: %v", err)
	}
}

func TestBlackholeDialTimesOut(t *testing.T) {
	n := New(7, WithDialTimeout(50*time.Millisecond))
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{DropRate: 1, Blackhole: true})
	start := time.Now()
	_, err := n.Transport("a").Dial(context.Background(), ln.Addr().String())
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed dial error = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("blackholed dial returned after %v, before the timeout", d)
	}
}

func TestPartitionSeversLiveConnAndHeals(t *testing.T) {
	n := New(3)
	ln := echoNode(t, n, "b")
	conn := dial(t, n, "a", ln.Addr().String())
	if _, err := roundTrip(conn, []byte("before")); err != nil {
		t.Fatalf("pre-partition: %v", err)
	}
	n.Partition([]string{"a"}, []string{"b"})
	if _, err := conn.Write([]byte("during")); err == nil {
		t.Fatal("write across a reset partition succeeded")
	}
	if _, err := n.Transport("a").Dial(context.Background(), ln.Addr().String()); err == nil {
		t.Fatal("dial across a reset partition succeeded")
	}
	n.Heal()
	if _, err := roundTrip(dial(t, n, "a", ln.Addr().String()), []byte("after")); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}

func TestAsymmetricBlock(t *testing.T) {
	n := New(4)
	lnB := echoNode(t, n, "b")
	conn := dial(t, n, "a", lnB.Addr().String())
	n.Block("a", "b") // a→b severed; b→a untouched
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write along the blocked direction succeeded")
	}
	// The reverse direction — c standing in for traffic toward a — flows.
	if _, err := roundTrip(dial(t, n, "c", lnB.Addr().String()), []byte("ok")); err != nil {
		t.Fatalf("unblocked direction: %v", err)
	}
}

func TestBlackholePartitionStallsUntilHeal(t *testing.T) {
	n := New(5)
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{Blackhole: true})
	conn := dial(t, n, "a", ln.Addr().String())
	n.Partition([]string{"a"}, []string{"b"})
	go func() {
		time.Sleep(40 * time.Millisecond)
		n.Heal()
	}()
	start := time.Now()
	if _, err := roundTrip(conn, []byte("stalled")); err != nil {
		t.Fatalf("stalled write did not resume after heal: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("blackholed write completed in %v, before the heal", d)
	}
	// With a deadline, a still-partitioned op times out instead of
	// hanging forever.
	conn2 := dial(t, n, "a", ln.Addr().String())
	n.Partition([]string{"a"}, []string{"b"})
	conn2.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := conn2.Write([]byte("x")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed write with deadline = %v, want deadline exceeded", err)
	}
}

func TestCorruptionFlipsOneBit(t *testing.T) {
	n := New(11)
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{CorruptRate: 1}) // corrupt a's writes; echo returns them verbatim
	conn := dial(t, n, "a", ln.Addr().String())
	msg := bytes.Repeat([]byte("payload "), 8)
	got, err := roundTrip(conn, msg)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("always-corrupt link delivered clean data")
	}
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ msg[i])
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1 per write", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestCutDeliversPrefixThenSevers(t *testing.T) {
	n := New(13)
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{CutRate: 1})
	conn := dial(t, n, "a", ln.Addr().String())
	msg := []byte("this frame will be cut mid-transfer")
	nw, err := conn.Write(msg)
	if err == nil {
		t.Fatal("write over an always-cut link reported success")
	}
	if nw >= len(msg) {
		t.Fatalf("cut wrote %d of %d bytes, want a strict prefix", nw, len(msg))
	}
	if _, err := conn.Write([]byte("more")); err == nil {
		t.Fatal("write after a cut succeeded")
	}
}

func TestLatencyPacesTransfers(t *testing.T) {
	n := New(17)
	ln := echoNode(t, n, "b")
	n.SetLink("a", "b", Link{Latency: 30 * time.Millisecond})
	conn := dial(t, n, "a", ln.Addr().String())
	start := time.Now()
	if _, err := conn.Write([]byte("paced")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write with 30ms latency completed in %v", d)
	}
}

func TestTapObservesBothDirections(t *testing.T) {
	var mu sync.Mutex
	flows := make(map[[2]string][]byte)
	tap := func(from, to string, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		key := [2]string{from, to}
		flows[key] = append(flows[key], data...)
	}
	n := New(19, WithTap(tap))
	ln := echoNode(t, n, "b")
	conn := dial(t, n, "a", ln.Addr().String())
	msg := []byte("tapped exchange")
	if _, err := roundTrip(conn, msg); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(flows[[2]string{"a", "b"}], msg) {
		t.Fatalf("a→b tap = %q, want %q", flows[[2]string{"a", "b"}], msg)
	}
	if !bytes.Equal(flows[[2]string{"b", "a"}], msg) {
		t.Fatalf("b→a tap = %q, want %q", flows[[2]string{"b", "a"}], msg)
	}
}

func TestDeterministicDecisionsPerSeed(t *testing.T) {
	// Same seed, same connection order → identical drop decisions.
	pattern := func(seed int64) []bool {
		n := New(seed)
		ln := echoNode(t, n, "b")
		n.SetLink("a", "b", Link{DropRate: 0.5})
		var out []bool
		for i := 0; i < 16; i++ {
			conn, err := n.Transport("a").Dial(context.Background(), ln.Addr().String())
			out = append(out, err != nil)
			if err == nil {
				conn.Close()
			}
		}
		return out
	}
	p1, p2 := pattern(42), pattern(42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("seed 42 diverged at dial %d: %v vs %v", i, p1, p2)
		}
	}
}

func TestRunScheduleLoopsAndHealsOnCancel(t *testing.T) {
	n := New(23)
	echoNode(t, n, "a")
	echoNode(t, n, "b")
	ctx, cancel := context.WithCancel(context.Background())
	steps := []Step{
		{Hold: 10 * time.Millisecond, Groups: [][]string{{"a"}, {"b"}}},
		{Hold: 10 * time.Millisecond, Groups: nil},
	}
	done := n.RunSchedule(ctx, steps, true)
	// Let it cycle a few times, then cancel: the net must end healed.
	time.Sleep(35 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("schedule did not stop on cancel")
	}
	if n.isBlocked("a", "b") || n.isBlocked("b", "a") {
		t.Fatal("net still partitioned after schedule cancel")
	}
}
