// Package faultnet is a deterministic, seeded fault-injection transport
// for chaos-testing the replication mesh. It implements the replica
// layer's Transport interface (Dial/Listen) over real loopback TCP, but
// every connection a node dials is wrapped in a fault layer that can
// inject latency and jitter, cap bandwidth, drop dials probabilistically,
// cut connections mid-frame, flip bytes in flight, and stall or reset
// traffic across scheduled (possibly asymmetric) partitions — then heal.
//
// Topology model: every node gets a Transport handle (Net.Transport);
// listeners register their chosen address as owned by their node, and a
// dialed address resolves to its owning node, so faults are configured
// per directed node pair (a Link). Faults are applied entirely on the
// dialing side's connection wrapper: writes are governed by the
// dialer→owner link, reads by the owner→dialer link, which makes
// asymmetric partitions and one-sided corruption expressible with a
// single wrapper. Link configuration and partitions are consulted on
// every operation, so reconfiguring the net mid-run affects in-flight
// connections: a partition severs (reset) or stalls (blackhole) live
// traffic, and a heal lets stalled blackhole traffic resume.
//
// Determinism: every probabilistic decision (drops, cuts, corruption,
// jitter) is drawn from a per-connection PRNG derived from the net's
// seed and a connection sequence number, so a fixed seed yields a
// reproducible fault pattern per connection. (Wall-clock interleaving
// still varies across runs; the seed pins the decisions, not the
// schedule.)
//
// A tap observes every chunk of data actually delivered, post-fault, in
// both directions — the hook the wire fuzz corpus generator uses to
// record realistic hostile byte streams.
package faultnet

import (
	"context"
	"math/rand"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// Any is the wildcard endpoint for SetLink: a link configured with Any
// on one side applies to every pair with that side unspecified (exact
// pairs take precedence, then wildcard-destination, then
// wildcard-source, then the default link).
const Any = "*"

// Link is the fault configuration of one directed node pair. The zero
// value is a perfect link.
type Link struct {
	// Latency is added to every transfer operation in this direction;
	// Jitter adds a uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS caps throughput by pacing each transfer to
	// size/BandwidthBPS seconds; zero means unlimited.
	BandwidthBPS int
	// DropRate is the probability a dial attempt in this direction fails.
	DropRate float64
	// CutRate is the per-operation probability the connection is severed
	// mid-transfer: a prefix of the data is delivered, then the
	// connection dies — the mid-frame cut a crash or NAT timeout causes.
	CutRate float64
	// CorruptRate is the per-operation probability one random bit of the
	// transferred data is flipped in flight.
	CorruptRate float64
	// Blackhole selects how blocked traffic fails: false resets promptly
	// (connection refused / reset by peer), true silently discards — the
	// operation stalls until the partition heals, a deadline expires, or
	// the connection closes.
	Blackhole bool
}

// TapFunc observes one chunk of delivered data, post-fault, flowing
// from node from to node to. Called concurrently from connection
// goroutines; implementations synchronize themselves.
type TapFunc func(from, to string, data []byte)

// Option configures a Net.
type Option func(*Net)

// WithTap installs a delivery tap on the net.
func WithTap(tap TapFunc) Option { return func(n *Net) { n.tap = tap } }

// WithDialTimeout bounds how long a blackholed or partitioned dial may
// stall before timing out (default 2s); contexts still abort earlier.
func WithDialTimeout(d time.Duration) Option {
	return func(n *Net) {
		if d > 0 {
			n.dialTimeout = d
		}
	}
}

// Net is one fault-injected network: a set of node transports, the
// per-pair link table, and the current partition. Safe for concurrent
// use; reconfiguration applies to live connections.
type Net struct {
	seed        int64
	dialTimeout time.Duration
	tap         TapFunc

	mu          sync.Mutex
	rngSeq      int64
	defaultLink Link
	links       map[[2]string]Link
	owners      map[string]string // listen addr -> owning node
	blocked     map[[2]string]bool
}

// New creates a fault net whose probabilistic decisions derive from
// seed.
func New(seed int64, opts ...Option) *Net {
	n := &Net{
		seed:        seed,
		dialTimeout: 2 * time.Second,
		links:       make(map[[2]string]Link),
		owners:      make(map[string]string),
		blocked:     make(map[[2]string]bool),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// SetDefaultLink sets the link used for pairs with no specific
// configuration.
func (n *Net) SetDefaultLink(l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultLink = l
}

// SetLink configures the directed pair from→to; either side may be Any.
func (n *Net) SetLink(from, to string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{from, to}] = l
}

// SetLinkBoth configures both directions between a and b.
func (n *Net) SetLinkBoth(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// link resolves the effective configuration of the directed pair.
func (n *Net) link(from, to string) Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, key := range [][2]string{{from, to}, {from, Any}, {Any, to}} {
		if l, ok := n.links[key]; ok {
			return l
		}
	}
	return n.defaultLink
}

// Block severs the directed pair from→to until Unblock or Heal. How
// blocked traffic fails (reset vs. stall) follows the pair's Blackhole
// setting.
func (n *Net) Block(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]string{from, to}] = true
}

// Unblock lifts one directed block.
func (n *Net) Unblock(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]string{from, to})
}

// Partition replaces the current block set with a full partition: every
// pair of nodes in different groups is blocked in both directions;
// traffic within a group (and to nodes in no group) flows normally.
func (n *Net) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]string]bool)
	for i, gi := range groups {
		for j, gj := range groups {
			if i == j {
				continue
			}
			for _, a := range gi {
				for _, b := range gj {
					n.blocked[[2]string{a, b}] = true
				}
			}
		}
	}
}

// Heal lifts every block.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]string]bool)
}

// isBlocked reports whether the directed pair is currently severed.
func (n *Net) isBlocked(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[[2]string{from, to}]
}

// Step is one entry of a partition schedule: the partition (nil Groups
// means healed) held for Hold.
type Step struct {
	Hold   time.Duration
	Groups [][]string
}

// RunSchedule drives the net through steps (looping when loop is true)
// until ctx is cancelled, then heals and closes the returned channel.
// Rolling-partition chaos scenarios are a looped two-step schedule with
// rotating group membership.
func (n *Net) RunSchedule(ctx context.Context, steps []Step, loop bool) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer n.Heal()
		for {
			for _, s := range steps {
				if s.Groups == nil {
					n.Heal()
				} else {
					n.Partition(s.Groups...)
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(s.Hold):
				}
			}
			if !loop {
				return
			}
		}
	}()
	return done
}

// registerOwner records that addr is served by node.
func (n *Net) registerOwner(addr, node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.owners[addr] = node
}

// ownerOf resolves a dial address to its owning node ("" when unknown —
// an unregistered address gets the default link and is never
// partitioned).
func (n *Net) ownerOf(addr string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.owners[addr]
}

// connRNG derives a fresh per-connection PRNG from the seed and the
// connection sequence number.
func (n *Net) connRNG() *rand.Rand {
	n.mu.Lock()
	n.rngSeq++
	seq := n.rngSeq
	n.mu.Unlock()
	return rand.New(rand.NewSource(n.seed ^ (seq * 0x5851F42D4C957F2D)))
}

// Transport returns node's handle into the net: a replica-compatible
// Dial/Listen pair whose connections are fault-wrapped.
func (n *Net) Transport(node string) *Transport {
	return &Transport{net: n, node: node}
}

// Transport is one node's view of the fault net. It satisfies the
// replica layer's Transport interface.
type Transport struct {
	net  *Net
	node string
}

// Listen binds a real loopback TCP listener and registers its address
// as owned by this transport's node, so dials to it resolve their link
// configuration. Accepted connections are returned raw: all fault
// injection happens on the dialing side, in both directions.
func (t *Transport) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t.net.registerOwner(ln.Addr().String(), t.node)
	return ln, nil
}

// Dial opens a fault-wrapped connection to addr. Partitioned or dropped
// dials fail reset-style immediately, or — on blackhole links — stall
// until heal, the dial timeout, or ctx cancellation.
func (t *Transport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	fn := t.net
	owner := fn.ownerOf(addr)
	l := fn.link(t.node, owner)
	rng := fn.connRNG()
	deadline := time.Now().Add(fn.dialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if rng.Float64() < l.DropRate {
		if !l.Blackhole {
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: syscall.ECONNREFUSED}
		}
		// A blackholed drop is a dial that never answers: burn the
		// timeout, honouring ctx.
		select {
		case <-ctx.Done():
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: ctx.Err()}
		case <-time.After(time.Until(deadline)):
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: os.ErrDeadlineExceeded}
		}
	}
	// A partitioned dial: reset links refuse promptly, blackhole links
	// wait for a heal within the timeout and then proceed.
	for fn.isBlocked(t.node, owner) {
		if !l.Blackhole {
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: syscall.ECONNREFUSED}
		}
		if time.Now().After(deadline) {
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: os.ErrDeadlineExceeded}
		}
		select {
		case <-ctx.Done():
			return nil, &net.OpError{Op: "dial", Net: "faultnet", Err: ctx.Err()}
		case <-time.After(time.Millisecond):
		}
	}
	if d := l.Latency + jitterOf(rng, l.Jitter); d > 0 {
		time.Sleep(d)
	}
	var nd net.Dialer
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	conn, err := nd.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, fn: fn, from: t.node, to: owner, rng: rng}, nil
}

// jitterOf draws a uniform duration in [0, max).
func jitterOf(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(max)))
}

// faultConn is the dial-side fault wrapper: writes are faulted by the
// from→to link, reads by the to→from link, and both consult the current
// partition per operation.
type faultConn struct {
	net.Conn
	fn       *Net
	from, to string

	rngMu sync.Mutex
	rng   *rand.Rand

	dlMu            sync.Mutex
	readDL, writeDL time.Time

	closeOnce sync.Once
	closed    chan struct{}
	initOnce  sync.Once
}

func (c *faultConn) init() {
	c.initOnce.Do(func() { c.closed = make(chan struct{}) })
}

// roll draws one probability decision.
func (c *faultConn) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64() < p
}

func (c *faultConn) jitter(max time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return jitterOf(c.rng, max)
}

// flipBit flips one random bit of b in place.
func (c *faultConn) flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	c.rngMu.Lock()
	i := c.rng.Intn(len(b))
	bit := byte(1) << c.rng.Intn(8)
	c.rngMu.Unlock()
	b[i] ^= bit
}

func (c *faultConn) isClosed() bool {
	c.init()
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// Close severs the connection and wakes any blackhole-stalled
// operation.
func (c *faultConn) Close() error {
	c.init()
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDL, c.writeDL = t, t
	c.dlMu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDL = t
	c.dlMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.writeDL = t
	c.dlMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) deadline(read bool) time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if read {
		return c.readDL
	}
	return c.writeDL
}

// gate enforces the current partition on one operation: nil to proceed,
// an error to fail the operation. Reset links sever the connection;
// blackhole links stall until heal, deadline, or close.
func (c *faultConn) gate(op string, from, to string, blackhole bool, read bool) error {
	for c.fn.isBlocked(from, to) {
		if c.isClosed() {
			return &net.OpError{Op: op, Net: "faultnet", Err: net.ErrClosed}
		}
		if !blackhole {
			c.Close()
			return &net.OpError{Op: op, Net: "faultnet", Err: syscall.ECONNRESET}
		}
		if dl := c.deadline(read); !dl.IsZero() && time.Now().After(dl) {
			return &net.OpError{Op: op, Net: "faultnet", Err: os.ErrDeadlineExceeded}
		}
		time.Sleep(time.Millisecond)
	}
	if c.isClosed() {
		return &net.OpError{Op: op, Net: "faultnet", Err: net.ErrClosed}
	}
	return nil
}

// pace applies latency, jitter and the bandwidth cap of a link to a
// transfer of n bytes.
func (c *faultConn) pace(l Link, n int) {
	d := l.Latency + c.jitter(l.Jitter)
	if l.BandwidthBPS > 0 {
		d += time.Duration(float64(n) / float64(l.BandwidthBPS) * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Write sends through the from→to link: partition gate, pacing, then
// possibly corrupted (one flipped bit) or cut (half delivered, then
// severed) data. Delivered bytes hit the tap.
func (c *faultConn) Write(p []byte) (int, error) {
	l := c.fn.link(c.from, c.to)
	if err := c.gate("write", c.from, c.to, l.Blackhole, false); err != nil {
		return 0, err
	}
	c.pace(l, len(p))
	data := p
	if c.roll(l.CorruptRate) {
		data = append([]byte(nil), p...)
		c.flipBit(data)
	}
	if c.roll(l.CutRate) {
		half := data[:len(data)/2]
		n, _ := c.Conn.Write(half)
		if c.fn.tap != nil && n > 0 {
			c.fn.tap(c.from, c.to, half[:n])
		}
		c.Close()
		return n, &net.OpError{Op: "write", Net: "faultnet", Err: syscall.ECONNRESET}
	}
	n, err := c.Conn.Write(data)
	if c.fn.tap != nil && n > 0 {
		c.fn.tap(c.from, c.to, data[:n])
	}
	return n, err
}

// Read receives through the to→from link: partition gate, pacing, then
// possibly corrupted or cut delivery. Delivered bytes hit the tap.
func (c *faultConn) Read(p []byte) (int, error) {
	l := c.fn.link(c.to, c.from)
	if err := c.gate("read", c.to, c.from, l.Blackhole, true); err != nil {
		return 0, err
	}
	if d := l.Latency + c.jitter(l.Jitter); d > 0 {
		time.Sleep(d)
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if l.BandwidthBPS > 0 {
			time.Sleep(time.Duration(float64(n) / float64(l.BandwidthBPS) * float64(time.Second)))
		}
		if c.roll(l.CorruptRate) {
			c.flipBit(p[:n])
		}
		if c.roll(l.CutRate) {
			n /= 2
			c.Close()
		}
		if c.fn.tap != nil && n > 0 {
			c.fn.tap(c.to, c.from, p[:n])
		}
	}
	return n, err
}
