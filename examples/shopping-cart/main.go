// Shopping cart: the OR-set's add-wins semantics on a realistic scenario —
// a user's cart edited concurrently from a phone and a laptop. Removing an
// item only cancels the additions the remover has seen; a concurrent
// re-add survives the merge, so no purchase intent is silently lost.
//
//	go run ./examples/shopping-cart
package main

import (
	"fmt"

	"repro/peepul"
)

// Item ids for the demo catalogue.
const (
	espressoBeans = 1001
	grinder       = 1002
	kettle        = 1003
)

var names = map[int64]string{
	espressoBeans: "espresso beans",
	grinder:       "burr grinder",
	kettle:        "gooseneck kettle",
}

func main() {
	node, err := peepul.NewNode("phone", 1)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	cart, err := peepul.Open(node, peepul.OrSetSpace, "cart")
	if err != nil {
		panic(err)
	}
	must(cart.Fork("laptop"))

	add := func(dev string, item int64) {
		cart.DoOn(dev, peepul.OrSetOp{Kind: peepul.OrSetAdd, E: item})
		fmt.Printf("[%s] add    %s\n", dev, names[item])
	}
	remove := func(dev string, item int64) {
		cart.DoOn(dev, peepul.OrSetOp{Kind: peepul.OrSetRemove, E: item})
		fmt.Printf("[%s] remove %s\n", dev, names[item])
	}

	// Shared prefix: beans in the cart, then the devices go offline.
	add("phone", espressoBeans)
	must(cart.Sync("phone", "laptop"))

	// Offline editing: the laptop clears the beans and adds a grinder; the
	// phone re-adds the beans (user really wants them) and a kettle.
	remove("laptop", espressoBeans)
	add("laptop", grinder)
	add("phone", espressoBeans)
	add("phone", kettle)

	fmt.Println("\n-- devices reconnect and sync --")
	must(cart.Sync("phone", "laptop"))

	v, _ := cart.Do(peepul.OrSetOp{Kind: peepul.OrSetRead})
	fmt.Println("\nfinal cart (both devices):")
	for _, item := range v.Elems {
		fmt.Printf("  - %s\n", names[item])
	}
	// Add-wins: the beans survive because the phone's re-add was not seen
	// by the laptop's remove; the grinder and kettle are both present.
	if len(v.Elems) != 3 {
		panic(fmt.Sprintf("expected 3 items, got %v", v.Elems))
	}
	l, _ := cart.DoOn("laptop", peepul.OrSetOp{Kind: peepul.OrSetRead})
	if len(l.Elems) != 3 {
		panic("laptop disagrees with phone")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
