// Quickstart: the smallest end-to-end use of the library — a PN-counter
// object opened on a node, replicated across two branches, with
// concurrent updates reconciled by the certified three-way merge.
// Everything comes from the public peepul package.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/peepul"
)

func main() {
	// A node hosts named replicated objects; Open is get-or-create and
	// returns a typed handle bound to the node's branch.
	node, err := peepul.NewNode("main", 1)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	cart, err := peepul.Open(node, peepul.PNCounter, "cart-total")
	if err != nil {
		panic(err)
	}

	// Fork a second replica branch. Each branch evolves independently.
	if err := cart.Fork("replica"); err != nil {
		panic(err)
	}

	// Concurrent updates on both branches.
	cart.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 10})
	cart.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterInc, N: 5})
	cart.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterDec, N: 2})

	mv, _ := cart.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	rv, _ := cart.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterRead})
	fmt.Printf("before sync:  main=%d  replica=%d\n", mv, rv)

	// Synchronize: a three-way merge over the lowest common ancestor,
	// counting every increment and decrement exactly once.
	if err := cart.Sync("main", "replica"); err != nil {
		panic(err)
	}
	mv, _ = cart.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	rv, _ = cart.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterRead})
	fmt.Printf("after sync:   main=%d  replica=%d\n", mv, rv)
	if mv != 13 || rv != 13 {
		panic("replicas failed to converge to 13")
	}
	fmt.Println("converged: 10 + 5 - 2 = 13 on both replicas")
}
