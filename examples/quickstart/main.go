// Quickstart: the smallest end-to-end use of the library — a PN-counter
// replicated across two branches of the Git-like store, with concurrent
// updates reconciled by the certified three-way merge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/store"
)

func main() {
	// A store holds one replicated object; the codec serializes states for
	// content addressing.
	codec := store.FuncCodec[counter.PNState](func(s counter.PNState) []byte {
		buf := store.AppendInt64(nil, s.P)
		return store.AppendInt64(buf, s.N)
	})
	st := store.New[counter.PNState, counter.Op, counter.Val](counter.PNCounter{}, codec, "main")

	// Fork a second replica. Each branch evolves independently.
	if err := st.Fork("main", "replica"); err != nil {
		panic(err)
	}

	// Concurrent updates on both branches.
	st.Apply("main", counter.Op{Kind: counter.Inc, N: 10})
	st.Apply("replica", counter.Op{Kind: counter.Inc, N: 5})
	st.Apply("replica", counter.Op{Kind: counter.Dec, N: 2})

	mv, _ := st.Apply("main", counter.Op{Kind: counter.Read})
	rv, _ := st.Apply("replica", counter.Op{Kind: counter.Read})
	fmt.Printf("before sync:  main=%d  replica=%d\n", mv, rv)

	// Synchronize: a three-way merge over the lowest common ancestor,
	// counting every increment and decrement exactly once.
	if err := st.Sync("main", "replica"); err != nil {
		panic(err)
	}
	mv, _ = st.Apply("main", counter.Op{Kind: counter.Read})
	rv, _ = st.Apply("replica", counter.Op{Kind: counter.Read})
	fmt.Printf("after sync:   main=%d  replica=%d\n", mv, rv)
	if mv != 13 || rv != 13 {
		panic("replicas failed to converge to 13")
	}
	fmt.Println("converged: 10 + 5 - 2 = 13 on both replicas")
}
