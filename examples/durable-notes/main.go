// Durable notes: a replicated mergeable log that survives process
// restarts. The node is opened with peepul.WithStorage, so every commit
// lands in a segmented pack log on disk; "restarting" (closing the node
// and opening a fresh one over the same directory) recovers the full
// history — states, branches and clocks — and new operations continue
// exactly where the old process stopped.
//
// The example simulates the restart in-process so it runs unattended;
// point -data at a fixed directory (as cmd/chat-demo does) to try a real
// kill-and-rerun.
package main

import (
	"fmt"
	"os"

	"repro/peepul"
)

func main() {
	dir, err := os.MkdirTemp("", "peepul-durable-notes-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// First life: take some notes, then "crash" (close).
	node, err := peepul.NewNode("laptop", 1, peepul.WithStorage(dir))
	if err != nil {
		panic(err)
	}
	notes, err := peepul.Open(node, peepul.MLog, "notes")
	if err != nil {
		panic(err)
	}
	for _, msg := range []string{
		"peepul merges are three-way over the LCA",
		"delta chains snapshot every 32 states",
		"the pack log replays on reopen",
	} {
		if _, err := notes.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: msg}); err != nil {
			panic(err)
		}
	}
	if st, ok := notes.StorageStats(); ok {
		fmt.Printf("first life: 3 notes committed, %d records in %d segment(s) on disk\n",
			st.Records, st.Segments)
	}
	if err := node.Close(); err != nil {
		panic(err)
	}

	// Second life: reopen the same directory — the log replays and the
	// notes are back, and appending keeps working.
	node2, err := peepul.NewNode("laptop", 1, peepul.WithStorage(dir))
	if err != nil {
		panic(err)
	}
	defer node2.Close()
	notes2, err := peepul.Open(node2, peepul.MLog, "notes")
	if err != nil {
		panic(err)
	}
	if _, err := notes2.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "…and this note was added after the restart"}); err != nil {
		panic(err)
	}
	state, err := notes2.State()
	if err != nil {
		panic(err)
	}
	fmt.Println("second life recovered the log (newest first):")
	for _, e := range state {
		fmt.Printf("  [t=%d] %s\n", e.T, e.Msg)
	}
}
