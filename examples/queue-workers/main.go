// Queue workers: the replicated functional queue (§6) as a distributed
// task queue with at-least-once delivery — the semantics of Amazon SQS or
// RabbitMQ that the paper cites. A producer and two workers run as real
// replicas on loopback TCP; the workers dequeue concurrently and gossip
// reconciles: a job dequeued anywhere disappears everywhere, so a job may
// run twice (both workers grabbed it before syncing) but is never lost.
// Every sync is an incremental delta exchange — only the missing commits
// cross the wire.
//
// The example also replays Figure 11's worked merge exactly, driving the
// registered implementation directly through its descriptor.
//
//	go run ./examples/queue-workers
package main

import (
	"fmt"

	"repro/peepul"
)

func main() {
	figure11()
	workers()
}

// figure11 replays the paper's worked example: LCA [1..5]; branch A
// dequeues twice and enqueues 8, 9; branch B dequeues once and enqueues
// 6, 7; the merge is [3,4,5,6,7,8,9]. The descriptor exposes the raw
// implementation, so the merge can be driven with hand-picked
// timestamps.
func figure11() {
	impl := peepul.Queue.Impl
	lca := impl.Init()
	for i := int64(1); i <= 5; i++ {
		lca, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: i}, lca, peepul.Timestamp(i))
	}
	a := lca
	a, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueDequeue}, a, 100)
	a, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueDequeue}, a, 101)
	a, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: 8}, a, 8)
	a, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: 9}, a, 9)
	b := lca
	b, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueDequeue}, b, 102)
	b, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: 6}, b, 6)
	b, _ = impl.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: 7}, b, 7)

	merged := impl.Merge(lca, a, b)
	fmt.Print("Figure 11 three-way merge: [")
	for i, p := range merged.ToSlice() {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(p.V)
	}
	fmt.Println("]  (paper: [3,4,5,6,7,8,9])")
}

type qworker struct {
	node *peepul.Node
	jobs *peepul.Handle[peepul.QueueState, peepul.QueueOp, peepul.QueueVal]
}

func workers() {
	mk := func(name string, id int) qworker {
		n, err := peepul.NewNode(name, id)
		must(err)
		h, err := peepul.Open(n, peepul.Queue, "jobs")
		must(err)
		must(n.Listen("127.0.0.1:0"))
		return qworker{node: n, jobs: h}
	}
	producer := mk("producer", 1)
	w1 := mk("worker-1", 2)
	w2 := mk("worker-2", 3)
	defer producer.node.Close()
	defer w1.node.Close()
	defer w2.node.Close()

	// The producer enqueues six jobs and the workers sync to see them.
	for job := int64(1); job <= 6; job++ {
		producer.jobs.Do(peepul.QueueOp{Kind: peepul.QueueEnqueue, V: job})
	}
	must(w1.node.SyncWith(producer.node.Addr()))
	must(w2.node.SyncWith(producer.node.Addr()))

	// Each worker processes two jobs offline. Both grab the queue head, so
	// jobs 1 and 2 run on both workers — at-least-once, never lost.
	processed := map[string][]int64{}
	for _, w := range []qworker{w1, w2} {
		for i := 0; i < 2; i++ {
			v, _ := w.jobs.Do(peepul.QueueOp{Kind: peepul.QueueDequeue})
			if v.OK {
				processed[w.node.Name()] = append(processed[w.node.Name()], v.V)
			}
		}
	}
	for _, w := range []qworker{w1, w2} {
		fmt.Printf("%s processed jobs %v\n", w.node.Name(), processed[w.node.Name()])
	}

	// Gossip the dequeues back through the producer; each exchange ships
	// only the commits the other side is missing.
	must(w1.node.SyncWith(producer.node.Addr()))
	must(w2.node.SyncWith(producer.node.Addr()))
	must(w1.node.SyncWith(producer.node.Addr()))

	var remaining []int64
	head, err := producer.jobs.State()
	must(err)
	for _, p := range head.ToSlice() {
		remaining = append(remaining, p.V)
	}
	fmt.Printf("jobs still queued after reconciliation: %v\n", remaining)
	// After merging, every dequeued job is gone exactly once from the
	// queue: 3..6 remain.
	if len(remaining) != 4 || remaining[0] != 3 {
		panic(fmt.Sprintf("unexpected queue state: %v", remaining))
	}
	st := producer.node.Stats()
	fmt.Printf("producer wire: %d B sent, %d B recv, %d delta syncs, %d fallbacks\n",
		st.BytesSent, st.BytesRecv, st.DeltaSyncs, st.Fallbacks)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
