// Queue workers: the replicated functional queue (§6) as a distributed
// task queue with at-least-once delivery — the semantics of Amazon SQS or
// RabbitMQ that the paper cites. A producer enqueues jobs; two workers on
// different branches dequeue concurrently; merging reconciles: a job
// dequeued anywhere disappears everywhere, so a job may run twice (both
// workers grabbed it before syncing) but is never lost.
//
// The example also replays Figure 11's worked merge exactly.
//
//	go run ./examples/queue-workers
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/store"
)

func main() {
	figure11()
	workers()
}

// figure11 replays the paper's worked example: LCA [1..5]; branch A
// dequeues twice and enqueues 8, 9; branch B dequeues once and enqueues
// 6, 7; the merge is [3,4,5,6,7,8,9].
func figure11() {
	var impl queue.Queue
	lca := impl.Init()
	for i := int64(1); i <= 5; i++ {
		lca, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: i}, lca, core.Timestamp(i))
	}
	a := lca
	a, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, a, 100)
	a, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, a, 101)
	a, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 8}, a, 8)
	a, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 9}, a, 9)
	b := lca
	b, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, b, 102)
	b, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 6}, b, 6)
	b, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 7}, b, 7)

	merged := impl.Merge(lca, a, b)
	fmt.Print("Figure 11 three-way merge: [")
	for i, p := range merged.ToSlice() {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(p.V)
	}
	fmt.Println("]  (paper: [3,4,5,6,7,8,9])")
}

func workers() {
	codec := store.FuncCodec[queue.State](func(s queue.State) []byte {
		var buf []byte
		for _, p := range s.ToSlice() {
			buf = store.AppendTimestamp(buf, p.T)
			buf = store.AppendInt64(buf, p.V)
		}
		return buf
	})
	st := store.New[queue.State, queue.Op, queue.Val](queue.Queue{}, codec, "producer")
	must(st.Fork("producer", "worker-1"))
	must(st.Fork("producer", "worker-2"))

	// The producer enqueues six jobs and the workers sync to see them.
	for job := int64(1); job <= 6; job++ {
		st.Apply("producer", queue.Op{Kind: queue.Enqueue, V: job})
	}
	must(st.Sync("producer", "worker-1"))
	must(st.Sync("producer", "worker-2"))

	// Each worker processes two jobs offline. Both grab the queue head, so
	// job 1 runs on both workers — at-least-once, never lost.
	processed := map[string][]int64{}
	for _, w := range []string{"worker-1", "worker-2"} {
		for i := 0; i < 2; i++ {
			v, _ := st.Apply(w, queue.Op{Kind: queue.Dequeue})
			if v.OK {
				processed[w] = append(processed[w], v.V)
			}
		}
	}
	for _, w := range []string{"worker-1", "worker-2"} {
		fmt.Printf("%s processed jobs %v\n", w, processed[w])
	}

	// Gossip the dequeues back through the producer.
	must(st.Sync("producer", "worker-1"))
	must(st.Sync("producer", "worker-2"))
	must(st.Sync("producer", "worker-1"))

	var remaining []int64
	head, _ := st.Head("producer")
	for _, p := range head.ToSlice() {
		remaining = append(remaining, p.V)
	}
	fmt.Printf("jobs still queued after reconciliation: %v\n", remaining)
	// Jobs 1 and 2 ran on worker-1; 1 and 2 also ran on worker-2 (same
	// heads). After merging, every dequeued job is gone exactly once from
	// the queue: 3..6 remain.
	if len(remaining) != 4 || remaining[0] != 3 {
		panic(fmt.Sprintf("unexpected queue state: %v", remaining))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
