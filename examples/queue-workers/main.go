// Queue workers: the replicated functional queue (§6) as a distributed
// task queue with at-least-once delivery — the semantics of Amazon SQS or
// RabbitMQ that the paper cites. A producer and two workers run as real
// replicas on loopback TCP; the workers dequeue concurrently and gossip
// reconciles: a job dequeued anywhere disappears everywhere, so a job may
// run twice (both workers grabbed it before syncing) but is never lost.
// Every sync is an incremental delta exchange — only the missing commits
// cross the wire.
//
// The example also replays Figure 11's worked merge exactly.
//
//	go run ./examples/queue-workers
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/wire"
)

func main() {
	figure11()
	workers()
}

// figure11 replays the paper's worked example: LCA [1..5]; branch A
// dequeues twice and enqueues 8, 9; branch B dequeues once and enqueues
// 6, 7; the merge is [3,4,5,6,7,8,9].
func figure11() {
	var impl queue.Queue
	lca := impl.Init()
	for i := int64(1); i <= 5; i++ {
		lca, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: i}, lca, core.Timestamp(i))
	}
	a := lca
	a, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, a, 100)
	a, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, a, 101)
	a, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 8}, a, 8)
	a, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 9}, a, 9)
	b := lca
	b, _ = impl.Do(queue.Op{Kind: queue.Dequeue}, b, 102)
	b, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 6}, b, 6)
	b, _ = impl.Do(queue.Op{Kind: queue.Enqueue, V: 7}, b, 7)

	merged := impl.Merge(lca, a, b)
	fmt.Print("Figure 11 three-way merge: [")
	for i, p := range merged.ToSlice() {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(p.V)
	}
	fmt.Println("]  (paper: [3,4,5,6,7,8,9])")
}

type qnode = replica.Node[queue.State, queue.Op, queue.Val]

func workers() {
	mk := func(name string, id int) *qnode {
		n, err := replica.NewNode[queue.State, queue.Op, queue.Val](name, id, queue.Queue{}, wire.Queue{})
		must(err)
		must(n.Listen("127.0.0.1:0"))
		return n
	}
	producer := mk("producer", 1)
	w1 := mk("worker-1", 2)
	w2 := mk("worker-2", 3)
	defer producer.Close()
	defer w1.Close()
	defer w2.Close()

	// The producer enqueues six jobs and the workers sync to see them.
	for job := int64(1); job <= 6; job++ {
		producer.Do(queue.Op{Kind: queue.Enqueue, V: job})
	}
	must(w1.SyncWith(producer.Addr()))
	must(w2.SyncWith(producer.Addr()))

	// Each worker processes two jobs offline. Both grab the queue head, so
	// jobs 1 and 2 run on both workers — at-least-once, never lost.
	processed := map[string][]int64{}
	for _, w := range []*qnode{w1, w2} {
		for i := 0; i < 2; i++ {
			v, _ := w.Do(queue.Op{Kind: queue.Dequeue})
			if v.OK {
				processed[w.Name()] = append(processed[w.Name()], v.V)
			}
		}
	}
	for _, w := range []*qnode{w1, w2} {
		fmt.Printf("%s processed jobs %v\n", w.Name(), processed[w.Name()])
	}

	// Gossip the dequeues back through the producer; each exchange ships
	// only the commits the other side is missing.
	must(w1.SyncWith(producer.Addr()))
	must(w2.SyncWith(producer.Addr()))
	must(w1.SyncWith(producer.Addr()))

	var remaining []int64
	head, err := producer.State()
	must(err)
	for _, p := range head.ToSlice() {
		remaining = append(remaining, p.V)
	}
	fmt.Printf("jobs still queued after reconciliation: %v\n", remaining)
	// After merging, every dequeued job is gone exactly once from the
	// queue: 3..6 remain.
	if len(remaining) != 4 || remaining[0] != 3 {
		panic(fmt.Sprintf("unexpected queue state: %v", remaining))
	}
	st := producer.Stats()
	fmt.Printf("producer wire: %d B sent, %d B recv, %d delta syncs, %d fallbacks\n",
		st.BytesSent, st.BytesRecv, st.DeltaSyncs, st.Fallbacks)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
