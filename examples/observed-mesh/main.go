// Observed mesh: a three-node gossip fleet with the flight recorder on
// and a live debug endpoint per node. The fleet converges a PN-counter
// through the always-on daemon, then the example plays operator: it
// scrapes alice's /metrics over HTTP and asserts the sync counters are
// live, pulls the unified /debug/peepul/snapshot, and prints the
// per-peer health table plus the recent sync-session timeline — the
// same views `peepul-stat` renders.
//
//	go run ./examples/observed-mesh
package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/peepul"
)

type member struct {
	node *peepul.Node
	hits *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]
}

func main() {
	names := []string{"alice", "bob", "carol"}
	fleet := make([]member, len(names))
	for i, name := range names {
		n, err := peepul.NewNode(name, i+1,
			peepul.WithDebugAddr("127.0.0.1:0"), // implies WithObservability
			peepul.WithMeshInterval(50*time.Millisecond),
			peepul.WithMeshJitter(10*time.Millisecond),
			peepul.WithMeshBackoff(10*time.Millisecond, 200*time.Millisecond))
		must(err)
		defer n.Close()
		h, err := peepul.Open(n, peepul.PNCounter, "requests")
		must(err)
		must(n.Listen("127.0.0.1:0"))
		fleet[i] = member{node: n, hits: h}
		fmt.Printf("%s: sync %s, debug http://%s\n", name, n.Addr(), n.DebugAddr())
	}
	// Ring supervision: each node gossips with its successor.
	for i := range fleet {
		fleet[i].node.AddPeer(fleet[(i+1)%len(fleet)].node.Addr())
	}

	// Concurrent traffic: each member counts its own requests.
	for i, m := range fleet {
		for k := 0; k < 5; k++ {
			must2(m.hits.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: int64(i + 1)}))
		}
	}
	awaitTotal(fleet, 5*(1+2+3))

	// Operator view 1: the Prometheus scrape. A converged fleet must
	// show completed sync sessions and nonzero wire traffic.
	scrape := httpGet("http://" + fleet[0].node.DebugAddr() + "/metrics")
	for _, series := range []string{
		"peepul_replica_sessions_total",
		"peepul_wire_frames_total",
		"peepul_mesh_rounds_total",
	} {
		if !hasNonzeroSeries(scrape, series) {
			panic("scrape shows no nonzero " + series + " series:\n" + scrape)
		}
	}
	fmt.Printf("\nscrape OK: %d metric lines, sync sessions and wire frames nonzero\n",
		strings.Count(scrape, "\n"))

	// Operator view 2: the unified snapshot, read in process here (the
	// HTTP document at /debug/peepul/snapshot is the same thing).
	snap := fleet[0].node.DebugSnapshot()
	fmt.Printf("\n%s hosts %d object(s); peer health:\n", snap.Node, len(snap.Objects))
	for addr, p := range snap.Mesh {
		fmt.Printf("  %s score=%.2f rounds=%d pushes=%d quarantined=%v\n",
			addr, p.Score, p.Rounds, p.Pushes, p.Quarantined)
	}
	trace := fleet[0].node.Trace()
	n := len(trace.Spans)
	if n == 0 {
		panic("flight recorder holds no sync-session spans")
	}
	if n > 3 {
		trace.Spans = trace.Spans[n-3:]
	}
	fmt.Println("\nlast sync sessions:")
	for _, sp := range trace.Spans {
		fmt.Println("  " + peepul.FormatSpan(sp))
	}
}

// awaitTotal blocks until every member reads want from the counter.
func awaitTotal(fleet []member, want int64) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, m := range fleet {
			if must2(m.hits.Do(peepul.CounterOp{Kind: peepul.CounterRead})) != want {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			panic("fleet did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpGet(url string) string {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != http.StatusOK {
		panic(url + ": " + resp.Status)
	}
	return string(body)
}

// hasNonzeroSeries reports whether the scrape holds a sample of the
// named series with a value other than 0.
func hasNonzeroSeries(scrape, name string) bool {
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must2[T any](v T, err error) T {
	must(err)
	return v
}
