// Collab log: the mergeable log (§5.2) as a collaborative activity feed —
// the motivating local-first scenario of the paper's introduction. Three
// researchers run real replicas on loopback TCP and append lab-notebook
// entries while disconnected; hub-and-spoke gossip through ada merges
// everyone's entries into one reverse-chronological feed with no entry
// lost or duplicated.
//
// Syncs use the incremental delta protocol: each exchange negotiates
// branch frontiers and ships only the missing commits, so gossiping an
// already-seen feed costs a handful of frontier bytes, not the whole
// history. The per-node wire stats printed at the end show it.
//
//	go run ./examples/collab-log
package main

import (
	"fmt"

	"repro/internal/mlog"
	"repro/internal/replica"
	"repro/internal/wire"
)

type node = replica.Node[mlog.State, mlog.Op, mlog.Val]

func main() {
	mk := func(name string, id int) *node {
		n, err := replica.NewNode[mlog.State, mlog.Op, mlog.Val](name, id, mlog.Log{}, wire.MLog{})
		must(err)
		must(n.Listen("127.0.0.1:0"))
		return n
	}
	ada, grace, barbara := mk("ada", 1), mk("grace", 2), mk("barbara", 3)
	defer ada.Close()
	defer grace.Close()
	defer barbara.Close()

	note := func(n *node, text string) {
		if _, err := n.Do(mlog.Op{Kind: mlog.Append, Msg: n.Name() + ": " + text}); err != nil {
			panic(err)
		}
	}

	note(ada, "calibrated the interferometer")
	note(grace, "compiler bootstrap reaches stage 2")
	note(barbara, "drafted the consistency proof")
	// Hub-and-spoke gossip through ada.
	must(grace.SyncWith(ada.Addr()))
	must(barbara.SyncWith(ada.Addr()))
	must(grace.SyncWith(ada.Addr()))

	note(grace, "stage 3 green, tagging release")
	note(ada, "interferometer drift back within tolerance")
	must(grace.SyncWith(ada.Addr()))
	must(barbara.SyncWith(ada.Addr()))

	feeds := make([]string, 0, 3)
	for _, n := range []*node{ada, grace, barbara} {
		v, err := n.Do(mlog.Op{Kind: mlog.Read})
		must(err)
		fmt.Printf("=== %s's feed (%d entries, newest first) ===\n", n.Name(), len(v.Log))
		feed := ""
		for _, e := range v.Log {
			fmt.Printf("  %s\n", e.Msg)
			feed += e.Msg + "\n"
		}
		feeds = append(feeds, feed)
		if len(v.Log) != 5 {
			panic("an entry was lost or duplicated")
		}
	}
	if feeds[0] != feeds[1] || feeds[1] != feeds[2] {
		panic("replicas diverged")
	}
	fmt.Println("all feeds identical: 5 entries, reverse-chronological")

	for _, n := range []*node{ada, grace, barbara} {
		st := n.Stats()
		fmt.Printf("%s wire: %d B sent, %d B recv, %d commits shipped, %d delta syncs, %d fallbacks\n",
			n.Name(), st.BytesSent, st.BytesRecv, st.CommitsSent, st.DeltaSyncs, st.Fallbacks)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
