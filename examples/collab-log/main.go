// Collab log: the mergeable log (§5.2) as a collaborative activity feed —
// the motivating local-first scenario of the paper's introduction. Three
// researchers append lab-notebook entries while disconnected; merges
// interleave everyone's entries into one reverse-chronological feed with
// no entry lost or duplicated.
//
//	go run ./examples/collab-log
package main

import (
	"fmt"

	"repro/internal/mlog"
	"repro/internal/store"
)

func main() {
	codec := store.FuncCodec[mlog.State](func(s mlog.State) []byte {
		var buf []byte
		for _, e := range s {
			buf = store.AppendTimestamp(buf, e.T)
			buf = store.AppendString(buf, e.Msg)
		}
		return buf
	})
	st := store.New[mlog.State, mlog.Op, mlog.Val](mlog.Log{}, codec, "ada")
	must(st.Fork("ada", "grace"))
	must(st.Fork("ada", "barbara"))

	note := func(who, text string) {
		if _, err := st.Apply(who, mlog.Op{Kind: mlog.Append, Msg: who + ": " + text}); err != nil {
			panic(err)
		}
	}

	note("ada", "calibrated the interferometer")
	note("grace", "compiler bootstrap reaches stage 2")
	note("barbara", "drafted the consistency proof")
	// Hub-and-spoke gossip through ada.
	must(st.Sync("ada", "grace"))
	must(st.Sync("ada", "barbara"))
	must(st.Sync("ada", "grace"))

	note("grace", "stage 3 green, tagging release")
	note("ada", "interferometer drift back within tolerance")
	must(st.Sync("ada", "grace"))
	must(st.Sync("ada", "barbara"))

	feeds := make([]string, 0, 3)
	for _, who := range []string{"ada", "grace", "barbara"} {
		v, err := st.Apply(who, mlog.Op{Kind: mlog.Read})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s's feed (%d entries, newest first) ===\n", who, len(v.Log))
		feed := ""
		for _, e := range v.Log {
			fmt.Printf("  %s\n", e.Msg)
			feed += e.Msg + "\n"
		}
		feeds = append(feeds, feed)
		if len(v.Log) != 5 {
			panic("an entry was lost or duplicated")
		}
	}
	if feeds[0] != feeds[1] || feeds[1] != feeds[2] {
		panic("replicas diverged")
	}
	fmt.Println("all feeds identical: 5 entries, reverse-chronological")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
