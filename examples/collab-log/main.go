// Collab log: the mergeable log (§5.2) as a collaborative activity feed —
// the motivating local-first scenario of the paper's introduction. Three
// researchers run real replicas on loopback TCP and append lab-notebook
// entries while disconnected; hub-and-spoke gossip through ada merges
// everyone's entries into one reverse-chronological feed with no entry
// lost or duplicated.
//
// Syncs use the incremental delta protocol: each exchange negotiates
// branch frontiers and ships only the missing commits, so gossiping an
// already-seen feed costs a handful of frontier bytes, not the whole
// history. The per-node wire stats printed at the end show it.
//
//	go run ./examples/collab-log
package main

import (
	"fmt"

	"repro/peepul"
)

type researcher struct {
	node *peepul.Node
	feed *peepul.Handle[peepul.MLogState, peepul.MLogOp, peepul.MLogVal]
}

func main() {
	mk := func(name string, id int) researcher {
		n, err := peepul.NewNode(name, id)
		must(err)
		h, err := peepul.Open(n, peepul.MLog, "lab-notebook")
		must(err)
		must(n.Listen("127.0.0.1:0"))
		return researcher{node: n, feed: h}
	}
	ada, grace, barbara := mk("ada", 1), mk("grace", 2), mk("barbara", 3)
	defer ada.node.Close()
	defer grace.node.Close()
	defer barbara.node.Close()

	note := func(r researcher, text string) {
		if _, err := r.feed.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: r.node.Name() + ": " + text}); err != nil {
			panic(err)
		}
	}

	note(ada, "calibrated the interferometer")
	note(grace, "compiler bootstrap reaches stage 2")
	note(barbara, "drafted the consistency proof")
	// Hub-and-spoke gossip through ada.
	must(grace.node.SyncWith(ada.node.Addr()))
	must(barbara.node.SyncWith(ada.node.Addr()))
	must(grace.node.SyncWith(ada.node.Addr()))

	note(grace, "stage 3 green, tagging release")
	note(ada, "interferometer drift back within tolerance")
	must(grace.node.SyncWith(ada.node.Addr()))
	must(barbara.node.SyncWith(ada.node.Addr()))

	feeds := make([]string, 0, 3)
	for _, r := range []researcher{ada, grace, barbara} {
		v, err := r.feed.Do(peepul.MLogOp{Kind: peepul.MLogRead})
		must(err)
		fmt.Printf("=== %s's feed (%d entries, newest first) ===\n", r.node.Name(), len(v.Log))
		feed := ""
		for _, e := range v.Log {
			fmt.Printf("  %s\n", e.Msg)
			feed += e.Msg + "\n"
		}
		feeds = append(feeds, feed)
		if len(v.Log) != 5 {
			panic("an entry was lost or duplicated")
		}
	}
	if feeds[0] != feeds[1] || feeds[1] != feeds[2] {
		panic("replicas diverged")
	}
	fmt.Println("all feeds identical: 5 entries, reverse-chronological")

	for _, r := range []researcher{ada, grace, barbara} {
		st := r.node.Stats()
		fmt.Printf("%s wire: %d B sent, %d B recv, %d commits shipped, %d delta syncs, %d fallbacks\n",
			r.node.Name(), st.BytesSent, st.BytesRecv, st.CommitsSent, st.DeltaSyncs, st.Fallbacks)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
