// Replicated counter over real TCP: three nodes on localhost, each with
// its own Lamport clock, concurrently update a PN-counter and gossip
// states peer-to-peer — the paper's geo-distributed deployment model in
// miniature (replicas exchange *states*, and each pairwise exchange is a
// three-way merge over the pair's last sync point).
//
//	go run ./examples/replicated-counter
package main

import (
	"fmt"
	"sync"

	"repro/internal/counter"
	"repro/internal/replica"
	"repro/internal/wire"
)

func main() {
	mk := func(name string, id int) *replica.Node[counter.PNState, counter.Op, counter.Val] {
		n, err := replica.NewNode[counter.PNState, counter.Op, counter.Val](
			name, id, counter.PNCounter{}, wire.PNCounter{})
		if err != nil {
			panic(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		return n
	}
	eu, us, ap := mk("eu", 1), mk("us", 2), mk("ap", 3)
	defer eu.Close()
	defer us.Close()
	defer ap.Close()
	fmt.Printf("eu=%s us=%s ap=%s\n", eu.Addr(), us.Addr(), ap.Addr())

	// Each region concurrently applies its own traffic.
	var wg sync.WaitGroup
	for i, n := range []*replica.Node[counter.PNState, counter.Op, counter.Val]{eu, us, ap} {
		wg.Add(1)
		go func(amount int64) {
			defer wg.Done()
			for k := int64(0); k < 100; k++ {
				must2(n.Do(counter.Op{Kind: counter.Inc, N: amount}))
			}
			must2(n.Do(counter.Op{Kind: counter.Dec, N: amount})) // one refund each
		}(int64(i + 1))
	}
	wg.Wait()

	for _, n := range []*replica.Node[counter.PNState, counter.Op, counter.Val]{eu, us, ap} {
		fmt.Printf("%s local view before gossip: %d\n", n.Name(), must2(n.Do(counter.Op{Kind: counter.Read})))
	}

	// Ring gossip: two rounds spread every update everywhere.
	for round := 0; round < 2; round++ {
		must(eu.SyncWith(us.Addr()))
		must(us.SyncWith(ap.Addr()))
		must(ap.SyncWith(eu.Addr()))
	}

	want := int64(100*1 + 100*2 + 100*3 - 1 - 2 - 3)
	for _, n := range []*replica.Node[counter.PNState, counter.Op, counter.Val]{eu, us, ap} {
		got := must2(n.Do(counter.Op{Kind: counter.Read}))
		fmt.Printf("%s converged view: %d\n", n.Name(), got)
		if got != want {
			panic(fmt.Sprintf("%s: got %d, want %d", n.Name(), got, want))
		}
	}
	fmt.Printf("all regions agree on %d (every increment and refund counted once)\n", want)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// must2 unwraps an operation result, panicking on replication errors.
func must2(v counter.Val, err error) counter.Val {
	must(err)
	return v
}
