// Replicated counter over real TCP: three nodes on localhost, each with
// its own Lamport clock, concurrently update a PN-counter and gossip
// commit histories peer-to-peer — the paper's geo-distributed deployment
// model in miniature. Each pairwise exchange negotiates branch frontiers
// and ships only missing commits.
//
//	go run ./examples/replicated-counter
package main

import (
	"fmt"
	"sync"

	"repro/peepul"
)

// region pairs a node with its handle on the shared "requests" counter.
type region struct {
	node *peepul.Node
	hits *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]
}

func main() {
	mk := func(name string, id int) region {
		n, err := peepul.NewNode(name, id)
		must(err)
		h, err := peepul.Open(n, peepul.PNCounter, "requests")
		must(err)
		must(n.Listen("127.0.0.1:0"))
		return region{node: n, hits: h}
	}
	eu, us, ap := mk("eu", 1), mk("us", 2), mk("ap", 3)
	defer eu.node.Close()
	defer us.node.Close()
	defer ap.node.Close()
	fmt.Printf("eu=%s us=%s ap=%s\n", eu.node.Addr(), us.node.Addr(), ap.node.Addr())

	// Each region concurrently applies its own traffic.
	var wg sync.WaitGroup
	for i, r := range []region{eu, us, ap} {
		wg.Add(1)
		go func(r region, amount int64) {
			defer wg.Done()
			for k := int64(0); k < 100; k++ {
				must2(r.hits.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: amount}))
			}
			must2(r.hits.Do(peepul.CounterOp{Kind: peepul.CounterDec, N: amount})) // one refund each
		}(r, int64(i+1))
	}
	wg.Wait()

	for _, r := range []region{eu, us, ap} {
		fmt.Printf("%s local view before gossip: %d\n",
			r.node.Name(), must2(r.hits.Do(peepul.CounterOp{Kind: peepul.CounterRead})))
	}

	// Ring gossip: two rounds spread every update everywhere.
	for round := 0; round < 2; round++ {
		must(eu.node.SyncWith(us.node.Addr()))
		must(us.node.SyncWith(ap.node.Addr()))
		must(ap.node.SyncWith(eu.node.Addr()))
	}

	want := int64(100*1 + 100*2 + 100*3 - 1 - 2 - 3)
	for _, r := range []region{eu, us, ap} {
		got := must2(r.hits.Do(peepul.CounterOp{Kind: peepul.CounterRead}))
		fmt.Printf("%s converged view: %d\n", r.node.Name(), got)
		if got != want {
			panic(fmt.Sprintf("%s: got %d, want %d", r.node.Name(), got, want))
		}
	}
	fmt.Printf("all regions agree on %d (every increment and refund counted once)\n", want)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// must2 unwraps an operation result, panicking on replication errors.
func must2(v peepul.CounterVal, err error) peepul.CounterVal {
	must(err)
	return v
}
