// Chat: the IRC-style application of §5.1 built *compositionally* — an
// α-map from channel names to mergeable logs, with no chat-specific merge
// code at all — and replicated *live*: three networked nodes in a
// hub-and-spoke topology whose always-on daemon does every exchange. The
// spokes supervise the hub (exchanges are bidirectional, so spoke-to-hub
// supervision carries news both ways), nobody calls a sync method, and
// the hub redraws from Watch events as the spokes' messages arrive. All
// three replicas end with identical, reverse-chronologically ordered
// channel logs.
//
//	go run ./examples/chat
package main

import (
	"context"
	"fmt"
	"time"

	"repro/peepul"
)

type replica struct {
	node *peepul.Node
	room *peepul.Handle[peepul.ChatState, peepul.ChatOp, peepul.ChatVal]
}

func open(name string, id int) replica {
	node, err := peepul.NewNode(name, id,
		peepul.WithMeshInterval(100*time.Millisecond),
		peepul.WithMeshJitter(25*time.Millisecond),
		peepul.WithMeshBackoff(20*time.Millisecond, 500*time.Millisecond))
	if err != nil {
		panic(err)
	}
	room, err := peepul.Open(node, peepul.Chat, "workspace")
	if err != nil {
		panic(err)
	}
	if err := node.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	return replica{node: node, room: room}
}

func main() {
	hub, nomad, office := open("hub", 1), open("nomad", 2), open("office", 3)
	defer hub.node.Close()
	defer nomad.node.Close()
	defer office.node.Close()

	// Hub-and-spoke: each spoke supervises the hub; the hub supervises
	// nobody. The daemon's bidirectional exchanges still relay every
	// message spoke -> hub -> other spoke.
	nomad.node.AddPeer(hub.node.Addr())
	office.node.AddPeer(hub.node.Addr())

	// The hub's screen: one line per remote merge, driven by Watch.
	ctx, cancelWatch := context.WithCancel(context.Background())
	defer cancelWatch()
	hubSeen := make(chan struct{}, 64)
	go func() {
		for ev := range hub.room.Watch(ctx) {
			fmt.Printf("[hub] news from %s (head %x...)\n", ev.From, ev.Head[:4])
			hubSeen <- struct{}{}
		}
	}()

	say := func(r replica, ch, msg string) {
		if _, err := r.room.Do(peepul.ChatOp{Kind: peepul.ChatSend, Ch: ch, Msg: r.node.Name() + ": " + msg}); err != nil {
			panic(err)
		}
	}

	// Round 1: both spokes post concurrently; the daemon gossips.
	say(nomad, "#general", "checking in from the train")
	say(office, "#general", "standup in five")
	say(office, "#ops", "deploy queued")
	await([]replica{hub, nomad, office}, 3)

	// Round 2: more traffic, same silence from the application — not one
	// sync call in this whole program.
	say(nomad, "#ops", "holding the deploy, tunnel ahead")
	say(office, "#general", "ack, see you at standup")
	await([]replica{hub, nomad, office}, 5)
	cancelWatch()

	var rendered []string
	for _, r := range []replica{hub, nomad, office} {
		out := ""
		fmt.Printf("=== %s ===\n", r.node.Name())
		st, err := r.room.State()
		if err != nil {
			panic(err)
		}
		for _, ch := range st {
			fmt.Printf("  %s\n", ch.K)
			for _, m := range ch.V {
				fmt.Printf("    %s\n", m.Msg)
				out += m.Msg + "\n"
			}
		}
		rendered = append(rendered, out)
	}
	if rendered[0] != rendered[1] || rendered[1] != rendered[2] {
		panic("replicas diverged")
	}
	if len(hubSeen) == 0 {
		panic("hub watcher saw no remote merges")
	}
	fmt.Println("all three replicas render identical logs — replicated by the daemon alone")
}

// await blocks until every replica holds want messages and the identical
// head hash.
func await(rs []replica, want int) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ref, err := rs[0].room.Store().HeadHash(rs[0].room.Branch())
		if err != nil {
			panic(err)
		}
		converged := true
		for _, r := range rs {
			st, err := r.room.State()
			if err != nil {
				panic(err)
			}
			total := 0
			for _, ch := range st {
				total += len(ch.V)
			}
			head, err := r.room.Store().HeadHash(r.room.Branch())
			if err != nil {
				panic(err)
			}
			if total != want || head != ref {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			panic("fleet did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
