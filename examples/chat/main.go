// Chat: the IRC-style application of §5.1 built *compositionally* — an
// α-map from channel names to mergeable logs, with no chat-specific merge
// code at all. The example runs a hub-and-spoke session: two spokes post
// while offline, then sync through the hub, and all three replicas end
// with identical, reverse-chronologically ordered channel logs.
//
//	go run ./examples/chat
package main

import (
	"fmt"

	"repro/internal/chat"
	"repro/internal/store"
)

func main() {
	codec := store.FuncCodec[chat.State](func(s chat.State) []byte {
		var buf []byte
		for _, e := range s {
			buf = store.AppendString(buf, e.K)
			for _, m := range e.V {
				buf = store.AppendTimestamp(buf, m.T)
				buf = store.AppendString(buf, m.Msg)
			}
		}
		return buf
	})
	st := store.New[chat.State, chat.Op, chat.Val](chat.Chat{}, codec, "hub")
	must(st.Fork("hub", "nomad"))
	must(st.Fork("hub", "office"))

	say := func(who, ch, msg string) {
		if _, err := st.Apply(who, chat.Op{Kind: chat.Send, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
	}

	// Round 1: both spokes post offline, then sync through the hub.
	say("nomad", "#general", "checking in from the train")
	say("office", "#general", "standup in five")
	say("office", "#ops", "deploy queued")
	must(st.Sync("hub", "nomad"))
	must(st.Sync("hub", "office"))
	must(st.Sync("hub", "nomad")) // second round so nomad sees office

	// Round 2: more traffic, another gossip round.
	say("nomad", "#ops", "holding the deploy, tunnel ahead")
	say("office", "#general", "ack, see you at standup")
	must(st.Sync("hub", "office"))
	must(st.Sync("hub", "nomad"))
	must(st.Sync("hub", "office"))

	var rendered []string
	for _, replica := range []string{"hub", "nomad", "office"} {
		out := ""
		fmt.Printf("=== %s ===\n", replica)
		for _, ch := range []string{"#general", "#ops"} {
			v, err := st.Apply(replica, chat.Op{Kind: chat.Read, Ch: ch})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %s\n", ch)
			for _, m := range v.Log {
				fmt.Printf("    %s\n", m.Msg)
				out += m.Msg + "\n"
			}
		}
		rendered = append(rendered, out)
	}
	if rendered[0] != rendered[1] || rendered[1] != rendered[2] {
		panic("replicas diverged")
	}
	fmt.Println("all three replicas render identical logs")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
