// Chat: the IRC-style application of §5.1 built *compositionally* — an
// α-map from channel names to mergeable logs, with no chat-specific merge
// code at all. The example runs a hub-and-spoke session: two spokes post
// while offline, then sync through the hub, and all three replicas end
// with identical, reverse-chronologically ordered channel logs.
//
//	go run ./examples/chat
package main

import (
	"fmt"

	"repro/peepul"
)

func main() {
	node, err := peepul.NewNode("hub", 1)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	room, err := peepul.Open(node, peepul.Chat, "workspace")
	if err != nil {
		panic(err)
	}
	must(room.Fork("nomad"))
	must(room.Fork("office"))

	say := func(who, ch, msg string) {
		if _, err := room.DoOn(who, peepul.ChatOp{Kind: peepul.ChatSend, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
	}

	// Round 1: both spokes post offline, then sync through the hub.
	say("nomad", "#general", "checking in from the train")
	say("office", "#general", "standup in five")
	say("office", "#ops", "deploy queued")
	must(room.Sync("hub", "nomad"))
	must(room.Sync("hub", "office"))
	must(room.Sync("hub", "nomad")) // second round so nomad sees office

	// Round 2: more traffic, another gossip round.
	say("nomad", "#ops", "holding the deploy, tunnel ahead")
	say("office", "#general", "ack, see you at standup")
	must(room.Sync("hub", "office"))
	must(room.Sync("hub", "nomad"))
	must(room.Sync("hub", "office"))

	var rendered []string
	for _, replica := range []string{"hub", "nomad", "office"} {
		out := ""
		fmt.Printf("=== %s ===\n", replica)
		for _, ch := range []string{"#general", "#ops"} {
			v, err := room.DoOn(replica, peepul.ChatOp{Kind: peepul.ChatRead, Ch: ch})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %s\n", ch)
			for _, m := range v.Log {
				fmt.Printf("    %s\n", m.Msg)
				out += m.Msg + "\n"
			}
		}
		rendered = append(rendered, out)
	}
	if rendered[0] != rendered[1] || rendered[1] != rendered[2] {
		panic("replicas diverged")
	}
	fmt.Println("all three replicas render identical logs")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
