// Command chat-demo runs the decentralised IRC-style chat of §5.1 on the
// Git-like store with three replica branches that post concurrently,
// gossip peer-to-peer, and converge to identical channel logs — no
// central server involved. Built entirely on the public peepul API.
//
// With -data <dir> the demo is durable: the node keeps its commit DAG in
// a segmented pack log under dir, so killing the process and running it
// again resumes the conversation where it left off — each run posts one
// more message and prints the channel history recovered from disk.
package main

import (
	"flag"
	"fmt"

	"repro/peepul"
)

func main() {
	data := flag.String("data", "", "storage directory; the demo resumes the conversation across restarts")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence for -data (records between index checkpoints; 0 keeps the default, negative disables)")
	verify := flag.Bool("verify-on-open", false, "with -data, eagerly verify the whole recovered pack at open instead of the lazy default")
	flag.Parse()
	if *data != "" {
		durable(*data, *ckptEvery, *verify)
		return
	}

	node, err := peepul.NewNode("alice", 1)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	room, err := peepul.Open(node, peepul.Chat, "conference")
	if err != nil {
		panic(err)
	}
	must(room.Fork("bob"))
	must(room.Fork("carol"))

	post := func(who, ch, msg string) {
		if _, err := room.DoOn(who, peepul.ChatOp{Kind: peepul.ChatSend, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
		fmt.Printf("[%s posts to %s] %s\n", who, ch, msg)
	}

	post("alice", "#pldi", "anyone reproduced the queue MRDT?")
	post("bob", "#pldi", "working on it, merge is linear time")
	post("carol", "#types", "simulation relations are neat")
	post("bob", "#types", "they compose through the alpha-map!")

	fmt.Println("\n--- gossip: alice<->bob, bob<->carol, alice<->carol ---")
	must(room.Sync("alice", "bob"))
	must(room.Sync("bob", "carol"))
	must(room.Sync("alice", "carol"))
	must(room.Sync("alice", "bob")) // one more round so alice sees carol's view

	for _, replica := range []string{"alice", "bob", "carol"} {
		fmt.Printf("\n=== %s's view ===\n", replica)
		for _, ch := range []string{"#pldi", "#types"} {
			v, err := room.DoOn(replica, peepul.ChatOp{Kind: peepul.ChatRead, Ch: ch})
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s:\n", ch)
			for _, entry := range v.Log {
				fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
			}
		}
	}
}

// durable runs the restartable variant: one durable node, one channel,
// one new message per run, full history printed from the recovered DAG.
func durable(dir string, ckptEvery int, verify bool) {
	opts := []peepul.NodeOption{peepul.WithStorage(dir)}
	if ckptEvery != 0 {
		opts = append(opts, peepul.WithCheckpointEvery(ckptEvery))
	}
	if verify {
		opts = append(opts, peepul.WithVerifyOnOpen(true))
	}
	node, err := peepul.NewNode("alice", 1, opts...)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	room, err := peepul.Open(node, peepul.Chat, "conference")
	if err != nil {
		panic(err)
	}

	v, err := room.Do(peepul.ChatOp{Kind: peepul.ChatRead, Ch: "#pldi"})
	if err != nil {
		panic(err)
	}
	n := len(v.Log)
	if n == 0 {
		fmt.Printf("fresh conversation in %s\n", dir)
	} else {
		fmt.Printf("resumed conversation from %s (%d messages on disk)\n", dir, n)
	}
	msg := fmt.Sprintf("alice: message #%d, surviving restarts", n+1)
	if _, err := room.Do(peepul.ChatOp{Kind: peepul.ChatSend, Ch: "#pldi", Msg: msg}); err != nil {
		panic(err)
	}

	v, err = room.Do(peepul.ChatOp{Kind: peepul.ChatRead, Ch: "#pldi"})
	if err != nil {
		panic(err)
	}
	fmt.Println("#pldi:")
	for _, entry := range v.Log {
		fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
	}
	if st, ok := room.StorageStats(); ok {
		fmt.Printf("\non disk: %d segment(s), %d bytes, recovered via %s — kill and rerun to resume\n",
			st.Segments, st.Bytes, st.RecoveryMode)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
