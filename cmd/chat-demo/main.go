// Command chat-demo runs the decentralised IRC-style chat of §5.1 on the
// Git-like store with three replica branches that post concurrently,
// gossip peer-to-peer, and converge to identical channel logs — no
// central server involved. Built entirely on the public peepul API.
package main

import (
	"fmt"

	"repro/peepul"
)

func main() {
	node, err := peepul.NewNode("alice", 1)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	room, err := peepul.Open(node, peepul.Chat, "conference")
	if err != nil {
		panic(err)
	}
	must(room.Fork("bob"))
	must(room.Fork("carol"))

	post := func(who, ch, msg string) {
		if _, err := room.DoOn(who, peepul.ChatOp{Kind: peepul.ChatSend, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
		fmt.Printf("[%s posts to %s] %s\n", who, ch, msg)
	}

	post("alice", "#pldi", "anyone reproduced the queue MRDT?")
	post("bob", "#pldi", "working on it, merge is linear time")
	post("carol", "#types", "simulation relations are neat")
	post("bob", "#types", "they compose through the alpha-map!")

	fmt.Println("\n--- gossip: alice<->bob, bob<->carol, alice<->carol ---")
	must(room.Sync("alice", "bob"))
	must(room.Sync("bob", "carol"))
	must(room.Sync("alice", "carol"))
	must(room.Sync("alice", "bob")) // one more round so alice sees carol's view

	for _, replica := range []string{"alice", "bob", "carol"} {
		fmt.Printf("\n=== %s's view ===\n", replica)
		for _, ch := range []string{"#pldi", "#types"} {
			v, err := room.DoOn(replica, peepul.ChatOp{Kind: peepul.ChatRead, Ch: ch})
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s:\n", ch)
			for _, entry := range v.Log {
				fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
