// Command chat-demo runs the decentralised IRC-style chat of §5.1 as a
// *live* fleet: three networked replicas (alice, bob, carol) gossiping
// through the always-on sync daemon — no central server, and no manual
// sync call anywhere. Each replica posts concurrently; the daemon's
// push-on-commit and anti-entropy rounds carry the messages; each
// replica's screen redraws from Watch events as remote merges land.
// Built entirely on the public peepul API.
//
// With -data <dir> the demo is durable instead: the node keeps its
// commit DAG in a segmented pack log under dir, so killing the process
// and running it again resumes the conversation where it left off —
// each run posts one more message and prints the channel history
// recovered from disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"repro/peepul"
)

func main() {
	data := flag.String("data", "", "storage directory; the demo resumes the conversation across restarts")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence for -data (records between index checkpoints; 0 keeps the default, negative disables)")
	verify := flag.Bool("verify-on-open", false, "with -data, eagerly verify the whole recovered pack at open instead of the lazy default")
	debug := flag.String("debug", "", "serve the live debug endpoint (metrics, snapshot, trace, pprof) on this address; the live fleet gives this address to alice and auto-picks ports for the rest")
	flag.Parse()
	if *data != "" {
		durable(*data, *ckptEvery, *verify, *debug)
		return
	}
	live(*debug)
}

type chatNode struct {
	node *peepul.Node
	room *peepul.Handle[peepul.ChatState, peepul.ChatOp, peepul.ChatVal]
}

// live runs the always-on fleet: a three-node gossip ring where every
// replica posts on its own node and the daemon does all the replication.
func live(debugAddr string) {
	names := []string{"alice", "bob", "carol"}
	fleet := make([]chatNode, len(names))
	for i, name := range names {
		opts := []peepul.NodeOption{
			peepul.WithMeshInterval(100 * time.Millisecond),
			peepul.WithMeshJitter(25 * time.Millisecond),
			peepul.WithMeshBackoff(20*time.Millisecond, 500*time.Millisecond),
		}
		if debugAddr != "" {
			// One fixed address can only bind once: alice gets the asked-for
			// address, the others auto-pick ports on the same interface.
			addr := debugAddr
			if i > 0 {
				addr = "127.0.0.1:0"
			}
			opts = append(opts, peepul.WithDebugAddr(addr))
		}
		node, err := peepul.NewNode(name, i+1, opts...)
		if err != nil {
			panic(err)
		}
		defer node.Close()
		room, err := peepul.Open(node, peepul.Chat, "conference")
		if err != nil {
			panic(err)
		}
		must(node.Listen("127.0.0.1:0"))
		if debugAddr != "" {
			fmt.Printf("[%s] debug endpoint: http://%s/debug/peepul/snapshot\n", name, node.DebugAddr())
		}
		fleet[i] = chatNode{node: node, room: room}
	}
	// Close the ring: each node supervises its successor. Exchanges are
	// bidirectional, so one direction of supervision converges the fleet.
	for i := range fleet {
		fleet[i].node.AddPeer(fleet[(i+1)%len(fleet)].node.Addr())
	}

	// Watch-driven redraw: every remote merge that moves a replica's head
	// reprints that replica's view of the room. No polling, no sync calls
	// — the channel fires exactly when replication changed something.
	ctx, cancelWatch := context.WithCancel(context.Background())
	defer cancelWatch()
	for _, cn := range fleet {
		go func(cn chatNode) {
			for ev := range cn.room.Watch(ctx) {
				st, err := cn.room.State()
				if err != nil {
					return
				}
				total := 0
				for _, ch := range st {
					total += len(ch.V)
				}
				fmt.Printf("[%s] merge from %s: now sees %d message(s)\n",
					cn.node.Name(), ev.From, total)
			}
		}(cn)
	}

	post := func(i int, ch, msg string) {
		who := names[i]
		if _, err := fleet[i].room.Do(peepul.ChatOp{Kind: peepul.ChatSend, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
		fmt.Printf("[%s posts to %s] %s\n", who, ch, msg)
	}

	post(0, "#pldi", "anyone reproduced the queue MRDT?")
	post(1, "#pldi", "working on it, merge is linear time")
	post(2, "#types", "simulation relations are neat")
	post(1, "#types", "they compose through the alpha-map!")

	fmt.Println("\n--- daemon gossip: no SyncWith, no Sync — waiting for convergence ---")
	awaitChat(fleet, 4)
	// Detach the watchers (their channels close) and give any in-flight
	// redraw a beat to print before the final views.
	cancelWatch()
	time.Sleep(50 * time.Millisecond)

	for _, cn := range fleet {
		fmt.Printf("\n=== %s's view ===\n", cn.node.Name())
		renderRoom(cn.room)
	}
	fmt.Println("\nall replicas converged on identical heads; daemon activity:")
	for _, cn := range fleet {
		for addr, st := range cn.node.MeshStats() {
			fmt.Printf("  %s -> %s: %d round(s), %d push(es)\n",
				cn.node.Name(), addr, st.Rounds, st.Pushes)
		}
	}
}

// awaitChat blocks until every replica holds want messages and the
// identical head hash.
func awaitChat(fleet []chatNode, want int) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ref, err := fleet[0].room.Store().HeadHash(fleet[0].room.Branch())
		if err != nil {
			panic(err)
		}
		converged := true
		for _, cn := range fleet {
			st, err := cn.room.State()
			if err != nil {
				panic(err)
			}
			total := 0
			for _, ch := range st {
				total += len(ch.V)
			}
			head, err := cn.room.Store().HeadHash(cn.room.Branch())
			if err != nil {
				panic(err)
			}
			if total != want || head != ref {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			panic("fleet did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// renderRoom prints every channel of the room, newest message first,
// straight from the replica's state — no read operation, no new commit.
func renderRoom(room *peepul.Handle[peepul.ChatState, peepul.ChatOp, peepul.ChatVal]) {
	st, err := room.State()
	if err != nil {
		panic(err)
	}
	for _, ch := range st {
		fmt.Printf("%s:\n", ch.K)
		for _, entry := range ch.V {
			fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
		}
	}
}

// durable runs the restartable variant: one durable node, one channel,
// one new message per run, full history printed from the recovered DAG.
func durable(dir string, ckptEvery int, verify bool, debugAddr string) {
	opts := []peepul.NodeOption{peepul.WithStorage(dir)}
	if ckptEvery != 0 {
		opts = append(opts, peepul.WithCheckpointEvery(ckptEvery))
	}
	if verify {
		opts = append(opts, peepul.WithVerifyOnOpen(true))
	}
	if debugAddr != "" {
		opts = append(opts, peepul.WithDebugAddr(debugAddr))
	}
	node, err := peepul.NewNode("alice", 1, opts...)
	if err != nil {
		panic(err)
	}
	defer node.Close()
	room, err := peepul.Open(node, peepul.Chat, "conference")
	if err != nil {
		panic(err)
	}

	v, err := room.Do(peepul.ChatOp{Kind: peepul.ChatRead, Ch: "#pldi"})
	if err != nil {
		panic(err)
	}
	n := len(v.Log)
	if n == 0 {
		fmt.Printf("fresh conversation in %s\n", dir)
	} else {
		fmt.Printf("resumed conversation from %s (%d messages on disk)\n", dir, n)
	}
	msg := fmt.Sprintf("alice: message #%d, surviving restarts", n+1)
	if _, err := room.Do(peepul.ChatOp{Kind: peepul.ChatSend, Ch: "#pldi", Msg: msg}); err != nil {
		panic(err)
	}

	v, err = room.Do(peepul.ChatOp{Kind: peepul.ChatRead, Ch: "#pldi"})
	if err != nil {
		panic(err)
	}
	fmt.Println("#pldi:")
	for _, entry := range v.Log {
		fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
	}
	if st, ok := room.StorageStats(); ok {
		fmt.Printf("\non disk: %d segment(s), %d bytes, recovered via %s — kill and rerun to resume\n",
			st.Segments, st.Bytes, st.RecoveryMode)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
