// Command chat-demo runs the decentralised IRC-style chat of §5.1 on the
// Git-like store with three replicas that post concurrently, gossip
// peer-to-peer, and converge to identical channel logs — no central server
// involved.
package main

import (
	"fmt"

	"repro/internal/chat"
	"repro/internal/store"
)

func main() {
	codec := store.FuncCodec[chat.State](func(s chat.State) []byte {
		var buf []byte
		for _, e := range s {
			buf = store.AppendString(buf, e.K)
			for _, m := range e.V {
				buf = store.AppendTimestamp(buf, m.T)
				buf = store.AppendString(buf, m.Msg)
			}
		}
		return buf
	})
	st := store.New[chat.State, chat.Op, chat.Val](chat.Chat{}, codec, "alice")
	must(st.Fork("alice", "bob"))
	must(st.Fork("alice", "carol"))

	post := func(who, ch, msg string) {
		if _, err := st.Apply(who, chat.Op{Kind: chat.Send, Ch: ch, Msg: who + ": " + msg}); err != nil {
			panic(err)
		}
		fmt.Printf("[%s posts to %s] %s\n", who, ch, msg)
	}

	post("alice", "#pldi", "anyone reproduced the queue MRDT?")
	post("bob", "#pldi", "working on it, merge is linear time")
	post("carol", "#types", "simulation relations are neat")
	post("bob", "#types", "they compose through the alpha-map!")

	fmt.Println("\n--- gossip: alice<->bob, bob<->carol, alice<->carol ---")
	must(st.Sync("alice", "bob"))
	must(st.Sync("bob", "carol"))
	must(st.Sync("alice", "carol"))
	must(st.Sync("alice", "bob")) // one more round so alice sees carol's view

	for _, replica := range []string{"alice", "bob", "carol"} {
		fmt.Printf("\n=== %s's view ===\n", replica)
		for _, ch := range []string{"#pldi", "#types"} {
			v, err := st.Apply(replica, chat.Op{Kind: chat.Read, Ch: ch})
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s:\n", ch)
			for _, entry := range v.Log {
				fmt.Printf("  [t=%d] %s\n", entry.T, entry.Msg)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
