// Command peepul-stat inspects a running node through its live debug
// endpoint (peepul.WithDebugAddr). By default it fetches
// /debug/peepul/snapshot and renders the node's health as tables: the
// aggregate sync counters with their negotiation-ladder tier split, a
// per-object row set, the per-peer mesh supervisor state (health score,
// backoff, quarantine), and the most recent sync-session spans as a
// timeline.
//
// Usage:
//
//	peepul-stat -addr 127.0.0.1:6060            # snapshot tables
//	peepul-stat -addr 127.0.0.1:6060 -trace     # full flight-recorder timeline
//	peepul-stat -addr 127.0.0.1:6060 -metrics   # raw Prometheus text
//	peepul-stat -addr 127.0.0.1:6060 -json      # raw snapshot JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
)

func main() {
	addr := flag.String("addr", "", "debug endpoint address (host:port) of the node, as set by WithDebugAddr")
	trace := flag.Bool("trace", false, "print the full flight-recorder timeline instead of the snapshot tables")
	metrics := flag.Bool("metrics", false, "print the raw Prometheus /metrics text")
	rawJSON := flag.Bool("json", false, "print the raw JSON of the fetched document")
	spans := flag.Int("spans", 10, "how many recent sync-session spans the snapshot view prints")
	timeout := flag.Duration("timeout", 5*time.Second, "HTTP fetch timeout")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "peepul-stat: -addr is required (the node's WithDebugAddr address)")
		flag.Usage()
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	switch {
	case *metrics:
		body := fetch(client, *addr, "/metrics")
		os.Stdout.Write(body)
	case *trace:
		body := fetch(client, *addr, "/debug/peepul/trace")
		if *rawJSON {
			os.Stdout.Write(body)
			return
		}
		var tr obs.Trace
		decode(body, &tr)
		fmt.Print(obs.FormatTrace(tr))
	default:
		body := fetch(client, *addr, "/debug/peepul/snapshot")
		if *rawJSON {
			os.Stdout.Write(body)
			return
		}
		var snap replica.DebugSnapshot
		decode(body, &snap)
		render(snap, *spans)
	}
}

func fetch(client *http.Client, addr, path string) []byte {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		fatalf("fetching %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("%s: %s", path, resp.Status)
	}
	return body
}

func decode(body []byte, v any) {
	if err := json.Unmarshal(body, v); err != nil {
		fatalf("decoding response: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "peepul-stat: "+format+"\n", args...)
	os.Exit(1)
}

// render prints the snapshot as the standard table set.
func render(snap replica.DebugSnapshot, maxSpans int) {
	fmt.Printf("node %s (replica %d)", snap.Node, snap.ReplicaID)
	if snap.Addr != "" {
		fmt.Printf("  listening %s", snap.Addr)
	}
	fmt.Printf("  snapshot %s\n\n", snap.Time.Format(time.RFC3339))

	s := snap.Stats
	fmt.Printf("sync: %d delta (%d recon / %d packed / %d plain), %d full (v1 %d), %d fallback(s), %d miss(es)\n",
		s.DeltaSyncs, s.ReconSessions, s.PackedSessions, s.PlainSessions,
		s.FullSyncs, s.V1Sessions, s.Fallbacks, s.Misses)
	fmt.Printf("wire: %d B out / %d B in, %d commit(s) out / %d in, %d redundant, %d shed\n\n",
		s.BytesSent, s.BytesRecv, s.CommitsSent, s.CommitsRecv,
		s.RedundantCommits, s.InboundShed)

	if len(snap.Objects) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "OBJECT\tDATATYPE\tCOMMITS\tDELTA\tFULL\tBYTES OUT\tBYTES IN\tSEGMENTS")
		for _, name := range sortedKeys(snap.Objects) {
			o := snap.Objects[name]
			seg := "-"
			if o.Storage != nil {
				seg = fmt.Sprintf("%d (%d B)", o.Storage.Segments, o.Storage.Bytes)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
				name, o.Datatype, o.Commits, o.Stats.DeltaSyncs, o.Stats.FullSyncs,
				o.Stats.BytesSent, o.Stats.BytesRecv, seg)
		}
		w.Flush()
		fmt.Println()
	}

	if len(snap.Mesh) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "PEER\tSCORE\tROUNDS\tPUSHES\tFAILS\tBACKOFF\tQUARANTINE\tLAST ERROR")
		for _, addr := range sortedKeys(snap.Mesh) {
			p := snap.Mesh[addr]
			quar := "-"
			if p.Quarantined {
				quar = "YES: " + p.QuarantineReason
			} else if p.Quarantines > 0 {
				quar = fmt.Sprintf("recovered x%d", p.Quarantines)
			}
			lastErr := p.LastError
			if lastErr == "" {
				lastErr = "-"
			}
			fmt.Fprintf(w, "%s\t%.2f\t%d\t%d\t%d\t%s\t%s\t%s\n",
				addr, p.Score, p.Rounds, p.Pushes, p.Failures, p.Backoff, quar, lastErr)
		}
		w.Flush()
		fmt.Println()
	}

	if n := len(snap.Spans); n > 0 {
		if n > maxSpans {
			snap.Spans = snap.Spans[n-maxSpans:]
		}
		fmt.Printf("last %d sync session(s):\n", len(snap.Spans))
		for _, sp := range snap.Spans {
			fmt.Println("  " + obs.FormatSpan(sp))
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
