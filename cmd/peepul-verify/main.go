// Command peepul-verify certifies every MRDT in the library: it explores
// the replicated store's labelled transition system exhaustively up to the
// per-type bounds plus seeded random walks, and checks the paper's proof
// obligations (Table 2: Φ_do, Φ_merge, Φ_spec, Φ_con, with the store
// properties Ψ_ts and Ψ_lca re-validated) at every transition. The summary
// table is the reproduction's Table 3′.
//
//	peepul-verify              # default exploration volume
//	peepul-verify -scale 5     # 5× the random-walk volume
//	peepul-verify -type queue  # certify only matching data types
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 1.0, "multiplier on the number of random executions")
	typ := flag.String("type", "", "substring filter on data type names (empty = all)")
	flag.Parse()

	var reports []sim.Report
	failures := 0
	for _, r := range harness.All() {
		if *typ != "" && !strings.Contains(r.Name(), *typ) {
			continue
		}
		cfg := r.Config()
		cfg.RandomExecutions = int(float64(cfg.RandomExecutions) * *scale)
		if cfg.RandomExecutions < 1 {
			cfg.RandomExecutions = 1
		}
		rep := r.Certify(cfg)
		if rep.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s: %v\n", rep.Name, rep.Err)
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no data type matches %q\n", *typ)
		os.Exit(2)
	}
	bench.PrintTable3(os.Stdout, reports)
	if failures > 0 {
		os.Exit(1)
	}
}
