// Command peepul-verify certifies MRDTs from the public datatype
// registry: it explores the replicated store's labelled transition system
// exhaustively up to the per-type bounds plus seeded random walks, and
// checks the paper's proof obligations (Table 2: Φ_do, Φ_merge, Φ_spec,
// Φ_con, with the store properties Ψ_ts and Ψ_lca re-validated) at every
// transition. The summary table is the reproduction's Table 3′.
//
//	peepul-verify                   # certify every registered datatype
//	peepul-verify -scale 5          # 5× the random-walk volume
//	peepul-verify -type pn-counter  # exact registry name
//	peepul-verify -type or-set      # or any substring of one
//	peepul-verify -list             # print the registry and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/peepul"
)

func main() {
	scale := flag.Float64("scale", 1.0, "multiplier on the number of random executions")
	typ := flag.String("type", "", "registry name (exact or substring) of the data types to certify; empty = all")
	list := flag.Bool("list", false, "list registered data types and exit")
	flag.Parse()

	if *list {
		for _, name := range peepul.Names() {
			fmt.Println(name)
		}
		return
	}

	var reports []peepul.Report
	failures := 0
	for _, r := range peepul.All() {
		if !bench.MatchType(r.Name(), *typ) {
			continue
		}
		cfg := r.Config()
		cfg.RandomExecutions = int(float64(cfg.RandomExecutions) * *scale)
		if cfg.RandomExecutions < 1 {
			cfg.RandomExecutions = 1
		}
		rep := r.Certify(cfg)
		if rep.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s: %v\n", rep.Name, rep.Err)
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "no data type matches %q; registered:\n", *typ)
		for _, name := range peepul.Names() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(2)
	}
	bench.PrintTable3(os.Stdout, reports)
	if failures > 0 {
		os.Exit(1)
	}
}
