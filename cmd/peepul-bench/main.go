// Command peepul-bench regenerates every figure and table of the paper's
// evaluation (§7):
//
//	peepul-bench                 # everything, paper-scale sweeps
//	peepul-bench -fig 12         # one figure
//	peepul-bench -fig sync       # sync cost: delta vs full-history replication
//	peepul-bench -fig dag        # DAG scaling: merge cost vs history length
//	peepul-bench -fig space      # pack layer: resident + sync bytes vs full snapshots
//	peepul-bench -fig durable    # disk log: commit latency, recovery time, footprint
//	peepul-bench -fig mesh       # always-on fleets: converge/propagate latency, idle cost
//	peepul-bench -fig recon      # set reconciliation vs sampled-frontier negotiation
//	peepul-bench -fig chaos      # fault recovery: converge-after-heal vs loss and partitions
//	peepul-bench -fig obs        # instrumentation overhead: WithObservability vs disabled
//	peepul-bench -quick          # reduced sweeps for a fast sanity pass
//	peepul-bench -seed 7         # different workload seed
//	peepul-bench -fig table3 -type queue   # certification effort, one type
//
// The dag, space, durable, mesh, recon and chaos figures additionally
// write their rows as JSON (default BENCH_dag.json / BENCH_space.json /
// BENCH_durable.json / BENCH_mesh.json / BENCH_recon.json /
// BENCH_chaos.json, see -dag-out
// / -space-out / -durable-out / -mesh-out / -recon-out / -chaos-out) so CI can
// archive the perf trajectory. -durable-flat-factor N turns the durable figure into a
// regression gate: the run fails if recovery at the deepest swept
// history takes more than N times the shallowest — checkpointed
// recovery is supposed to be flat in depth. -recon-gate turns the recon
// figure into a regression gate: the run fails unless the converged
// re-sync at the deepest swept history ships zero commits within a
// constant byte ceiling.
//
// Output is row-oriented, one row per plotted point, matching the series
// of Figures 12–15 and Table 3 (as Table 3′, the certification-effort
// analogue). The -type filter takes a registry name (exact or substring,
// see `peepul-verify -list`) and narrows Table 3′ to matching datatypes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/peepul"
)

func main() {
	fig := flag.String("fig", "all", `figure to regenerate: "12", "13", "14", "15", "table3", "sync", "dag", "space", "durable", "mesh", "recon", "chaos", "obs" or "all"`)
	seed := flag.Int64("seed", 1, "workload seed")
	quick := flag.Bool("quick", false, "use reduced sweeps (seconds instead of minutes)")
	scale := flag.Float64("table3-scale", 1.0, "scale factor for Table 3' random-exploration volume")
	typ := flag.String("type", "", "registry name (exact or substring) filter for Table 3'; empty = all")
	dagOut := flag.String("dag-out", "BENCH_dag.json", "output path for the DAG-scaling JSON (-fig dag)")
	spaceOut := flag.String("space-out", "BENCH_space.json", "output path for the space JSON (-fig space)")
	durableOut := flag.String("durable-out", "BENCH_durable.json", "output path for the durability JSON (-fig durable)")
	meshOut := flag.String("mesh-out", "BENCH_mesh.json", "output path for the always-on fleet JSON (-fig mesh)")
	reconOut := flag.String("recon-out", "BENCH_recon.json", "output path for the set-reconciliation JSON (-fig recon)")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the fault-recovery JSON (-fig chaos)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "output path for the instrumentation-overhead JSON (-fig obs)")
	obsGate := flag.Float64("obs-gate", 0, "fail (exit 1) if any instrumented scenario regresses more than this percent over the disabled twin; 0 disables (-fig obs)")
	durableFlat := flag.Float64("durable-flat-factor", 0, "fail (exit 1) if recovery at the deepest swept history exceeds this multiple of the shallowest; 0 disables (-fig durable)")
	reconGate := flag.Bool("recon-gate", false, "fail (exit 1) unless the converged recon re-sync at the deepest swept history ships 0 commits within a constant byte ceiling (-fig recon)")
	flag.Parse()

	if *typ != "" {
		matches := 0
		for _, name := range peepul.Names() {
			if bench.MatchType(name, *typ) {
				matches++
			}
		}
		if matches == 0 {
			fmt.Fprintf(os.Stderr, "no data type matches %q; registered:\n", *typ)
			for _, name := range peepul.Names() {
				fmt.Fprintf(os.Stderr, "  %s\n", name)
			}
			os.Exit(2)
		}
	}

	fig12Ns, fig13Ns, fig14Ns, syncNs := bench.Fig12Ns, bench.Fig13Ns, bench.Fig14Ns, bench.SyncNs
	dagNs, dagMeshNs := bench.DagNs, bench.DagMeshNs
	spaceNs, spaceLogNs := bench.SpaceNs, bench.SpaceLogNs
	durableNs, durableLogNs := bench.DurableNs, bench.DurableLogNs
	meshRingNs, meshFullNs, meshSteady := bench.MeshRingNs, bench.MeshFullNs, bench.MeshSteadyWindow
	reconNs := bench.ReconNs
	obsNs, obsIters, obsReps := bench.ObsNs, bench.ObsIters, bench.ObsReps
	chaosNodes := bench.ChaosNodes
	chaosLosses, chaosPartitions := bench.ChaosLossRates, bench.ChaosPartitions
	if *quick {
		fig12Ns = []int{500, 1000, 1500}
		fig13Ns = []int{5000, 10000, 20000}
		fig14Ns = []int{2000, 5000, 10000}
		syncNs = []int{32, 128}
		dagNs = []int{100, 1000, 10000}
		dagMeshNs = []int{100, 1000}
		spaceNs = []int{100, 1000, 10000}
		spaceLogNs = []int{100, 1000, 5000}
		durableNs = []int{100, 1000, 10000}
		durableLogNs = []int{100, 1000, 5000}
		meshRingNs = []int{4, 8}
		meshFullNs = []int{4}
		meshSteady = 300 * time.Millisecond
		reconNs = bench.ReconQuickNs
		obsNs, obsIters, obsReps = bench.ObsQuickNs, bench.ObsQuickIters, bench.ObsQuickReps
		chaosNodes = 4
		chaosLosses = []float64{0, 0.25}
		chaosPartitions = []time.Duration{0, 150 * time.Millisecond}
		if *scale == 1.0 {
			*scale = 0.1
		}
	}

	run := func(name string, f func()) {
		if *fig == "all" || *fig == name {
			f()
			fmt.Println()
		}
	}
	run("12", func() { bench.PrintFig12(os.Stdout, bench.Fig12(fig12Ns, *seed)) })
	run("13", func() { bench.PrintFig13(os.Stdout, bench.Fig13(fig13Ns, *seed)) })
	run("14", func() { bench.PrintFig14(os.Stdout, bench.Fig14(fig14Ns, *seed)) })
	run("15", func() { bench.PrintFig15(os.Stdout, bench.Fig15(fig14Ns, *seed)) })
	run("table3", func() { bench.PrintTable3(os.Stdout, bench.Table3(*scale, *typ)) })
	run("sync", func() { bench.PrintSyncCost(os.Stdout, bench.SyncCost(syncNs, *seed)) })
	run("dag", func() {
		rows := bench.Dag(dagNs, dagMeshNs)
		bench.PrintDag(os.Stdout, rows)
		f, err := os.Create(*dagOut)
		if err == nil {
			err = bench.WriteDagJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *dagOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *dagOut, len(rows))
	})
	run("space", func() {
		rows := bench.Space(spaceNs, spaceLogNs, *seed)
		bench.PrintSpace(os.Stdout, rows)
		f, err := os.Create(*spaceOut)
		if err == nil {
			err = bench.WriteSpaceJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *spaceOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *spaceOut, len(rows))
	})

	run("durable", func() {
		rows := bench.Durable(durableNs, durableLogNs, *seed)
		bench.PrintDurable(os.Stdout, rows)
		f, err := os.Create(*durableOut)
		if err == nil {
			err = bench.WriteDurableJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *durableOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *durableOut, len(rows))
		if *durableFlat > 0 {
			factor, dt := bench.DurableFlatFactor(rows)
			fmt.Printf("recovery flatness: worst deepest/shallowest ratio %.2fx (%s), limit %.2fx\n", factor, dt, *durableFlat)
			if factor > *durableFlat {
				fmt.Fprintf(os.Stderr, "recovery is not flat: %s recovers %.2fx slower at the deepest history than the shallowest (limit %.2fx)\n", dt, factor, *durableFlat)
				os.Exit(1)
			}
		}
	})

	run("mesh", func() {
		rows := bench.Mesh(meshRingNs, meshFullNs, meshSteady)
		bench.PrintMesh(os.Stdout, rows)
		f, err := os.Create(*meshOut)
		if err == nil {
			err = bench.WriteMeshJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *meshOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *meshOut, len(rows))
	})

	run("recon", func() {
		rows := bench.Recon(reconNs, *seed)
		bench.PrintRecon(os.Stdout, rows)
		f, err := os.Create(*reconOut)
		if err == nil {
			err = bench.WriteReconJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *reconOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *reconOut, len(rows))
		if *reconGate {
			if err := bench.ReconGateErr(rows); err != nil {
				fmt.Fprintf(os.Stderr, "recon gate: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("recon gate: converged re-sync is O(1) at the deepest history")
		}
	})

	run("obs", func() {
		rows := bench.Obs(obsNs, obsIters, obsReps)
		bench.PrintObs(os.Stdout, rows)
		f, err := os.Create(*obsOut)
		if err == nil {
			err = bench.WriteObsJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *obsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *obsOut, len(rows))
		if *obsGate > 0 {
			if err := bench.ObsGateErr(rows, *obsGate); err != nil {
				fmt.Fprintf(os.Stderr, "obs gate: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("obs gate: instrumentation overhead within %.1f%% on every scenario\n", *obsGate)
		}
	})

	run("chaos", func() {
		rows := bench.Chaos(chaosNodes, chaosLosses, chaosPartitions, *seed)
		bench.PrintChaos(os.Stdout, rows)
		f, err := os.Create(*chaosOut)
		if err == nil {
			err = bench.WriteChaosJSON(f, *seed, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *chaosOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", *chaosOut, len(rows))
	})

	switch *fig {
	case "all", "12", "13", "14", "15", "table3", "sync", "dag", "space", "durable", "mesh", "recon", "chaos", "obs":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
