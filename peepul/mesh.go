package peepul

// Always-on replication: the public face of the internal/mesh engine.
// A node given peers (WithPeers at construction, AddPeer later) keeps
// itself converged without any application SyncWith calls — one
// supervisor goroutine per peer runs jittered anti-entropy rounds,
// local commits are pushed to interested peers immediately (bursts
// coalesce), and unreachable peers are retried with exponential
// backoff. Watch turns remote-merge head moves into a channel, so a UI
// or cache reacts to replication instead of polling state.

import (
	"context"
	"time"

	"repro/internal/mesh"
	"repro/internal/replica"
)

// WithPeers seeds the node's always-on sync daemon: from construction
// on, every address gets a supervisor goroutine running anti-entropy
// rounds and receiving push-on-commit notifications. Equivalent to
// calling AddPeer for each address right after NewNode.
func WithPeers(addrs ...string) NodeOption { return replica.WithPeers(addrs...) }

// WithMeshInterval sets the daemon's anti-entropy round period per peer
// (default 2s). Zero and below keep the default.
func WithMeshInterval(d time.Duration) NodeOption { return replica.WithMeshInterval(d) }

// WithMeshJitter caps the random addition to each round's delay
// (default a quarter of the interval), de-synchronizing a fleet's
// supervisors. Zero disables jitter entirely.
func WithMeshJitter(d time.Duration) NodeOption { return replica.WithMeshJitter(d) }

// WithMeshBackoff sets the daemon's failure retry window: min after a
// first failure, doubling per consecutive failure up to max (defaults
// 250ms and 30s). Non-positive values keep the defaults.
func WithMeshBackoff(min, max time.Duration) NodeOption { return replica.WithMeshBackoff(min, max) }

// AddPeer registers addr with the node's sync daemon and starts
// supervising it immediately. Adding a present peer is a no-op.
func (n *Node) AddPeer(addr string) { n.rn.AddPeer(addr) }

// RemovePeer stops the daemon's supervision of addr. Removing an
// unknown peer is a no-op.
func (n *Node) RemovePeer(addr string) { n.rn.RemovePeer(addr) }

// Peers returns the daemon's supervised peer addresses, sorted.
func (n *Node) Peers() []string { return n.rn.Peers() }

// MeshStats is a snapshot of one peer's daemon state: anti-entropy
// rounds and pushes completed, failures and the backoff they earned,
// a health score (1 = healthy, halved per failure), wire cost, the
// last time an exchange completed, and the last error.
type MeshStats = mesh.PeerStats

// MeshStats snapshots the daemon's per-peer state, keyed by address.
func (n *Node) MeshStats() map[string]MeshStats { return n.rn.MeshStats() }

// PeerMeshStats snapshots one peer's daemon state; ok is false for
// addresses the daemon does not supervise.
func (n *Node) PeerMeshStats(addr string) (MeshStats, bool) { return n.rn.PeerMeshStats(addr) }

// WatchEvent reports one remote-merge head move of a watched object: a
// sync exchange with peer From moved the node branch's head to Head.
type WatchEvent = replica.WatchEvent

// Watch returns a channel of this object's remote-merge head moves.
// Events fire when a sync exchange (daemon round, push, or manual
// SyncWith — as client or server) changes the node branch's head with a
// peer's commits; local Do calls never produce events. Delivery never
// blocks replication: a slow consumer's buffer drops its oldest events
// first, so the newest head move is always the one waiting. The channel
// closes when ctx is cancelled or the node closes; either way the
// watcher detaches without leaking a goroutine.
func (h *Handle[S, Op, Val]) Watch(ctx context.Context) <-chan WatchEvent {
	return h.obj.Watch(ctx)
}
