// Package peepul is the public face of the library: certified mergeable
// replicated data types (MRDTs) over a Git-like branch-and-merge store,
// replicated peer-to-peer with incremental delta sync — a from-scratch Go
// reproduction of "Certified Mergeable Replicated Data Types"
// (Soundarapandian, Kamath, Nagar, Sivaramakrishnan — PLDI 2022).
//
// The package is organized around three ideas:
//
//   - A Datatype descriptor bundles everything the system knows about one
//     MRDT: the implementation, its wire codec, the declarative
//     specification, the replication-aware simulation relation, the
//     operation alphabet used for certification, and the exploration
//     bounds. Register puts a descriptor in the global registry;
//     Lookup/All drive the verifier, the benchmarks and the codec
//     round-trip tests off the same single source of truth. The paper's
//     library ships pre-registered (PNCounter, OrSetSpace, Queue, Chat,
//     …).
//
//   - A Node is one replica hosting any number of named objects, the way
//     an Irmin repository hosts many keys. Open(node, datatype, name)
//     returns a typed Handle (get-or-create) with Do/Fork/Pull/Sync;
//     Node.SyncWith negotiates and delta-syncs every shared object with a
//     peer over a single connection, with per-object SyncStats. A node
//     created WithStorage is durable: each object keeps a segmented,
//     checksummed pack log on disk, recovers it (verified) on reopen,
//     and compacts it whenever the store garbage-collects.
//
//   - Certification is executable: Registered.Certify explores the
//     replicated store's transition system and checks the paper's proof
//     obligations (Φ_do, Φ_merge, Φ_spec, Φ_con) at every transition.
//
// A minimal replicated counter:
//
//	node, _ := peepul.NewNode("eu", 1)
//	hits, _ := peepul.Open(node, peepul.PNCounter, "hits")
//	node.Listen("127.0.0.1:0")
//	hits.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1})
//	node.SyncWith(peerAddr) // delta-syncs every object the peer shares
package peepul

import (
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/store"
)

// MRDT is a mergeable replicated data type implementation
// D_τ = (Σ, σ0, do, merge): Init, Do (with store-supplied unique
// timestamps) and a three-way Merge over the lowest common ancestor.
// Implementations must be purely functional.
type MRDT[S, Op, Val any] = core.MRDT[S, Op, Val]

// Codec serializes and deserializes states of type S; encoding drives
// content addressing, decoding lets transferred histories round-trip.
type Codec[S any] = store.Codec[S]

// Spec is a declarative replicated data type specification F_τ: the value
// an operation must return given the abstract (event-history) state
// visible to it.
type Spec[Op, Val any] = core.Spec[Op, Val]

// Rsim is a replication-aware simulation relation relating abstract
// states to concrete states.
type Rsim[S, Op, Val any] = core.Rsim[S, Op, Val]

// ValEq compares operation return values (slices and other
// non-comparable values need per-type equality).
type ValEq[Val any] = core.ValEq[Val]

// AbstractState is the event-history state the specifications are written
// against.
type AbstractState[Op, Val any] = core.AbstractState[Op, Val]

// Timestamp is the totally ordered, globally unique operation timestamp
// the store supplies (property Ψ_ts).
type Timestamp = core.Timestamp

// Config bounds a certification run: exhaustive exploration depth plus
// seeded random walks.
type Config = sim.Config

// Report summarizes one certification run.
type Report = sim.Report

// DefaultConfig returns certification bounds that finish in a few seconds
// for the simple data types.
func DefaultConfig() Config { return sim.DefaultConfig() }

// SyncStats counts a node's (or one object's) sync traffic.
type SyncStats = replica.SyncStats

// MaxReplicaID is the largest node id accepted by NewNode.
const MaxReplicaID = replica.MaxReplicaID
