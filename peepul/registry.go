package peepul

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// Datatype is the descriptor of one MRDT: everything the system knows
// about the type, in one value. Open instantiates replicated objects from
// it; Register adds it to the global registry that drives the verifier,
// the benchmarks and the codec round-trip tests.
type Datatype[S, Op, Val any] struct {
	// Name identifies the datatype in the registry, in reports, and in
	// sync hellos (two nodes only merge an object if they agree on its
	// datatype name).
	Name string
	// Impl is the implementation D_τ.
	Impl MRDT[S, Op, Val]
	// Codec serializes states for content addressing and replication.
	Codec Codec[S]
	// Spec is the declarative specification F_τ.
	Spec Spec[Op, Val]
	// Rsim is the replication-aware simulation relation.
	Rsim Rsim[S, Op, Val]
	// ValEq compares return values.
	ValEq ValEq[Val]
	// Ops is the operation alphabet used to generate certification
	// executions and codec round-trip walks.
	Ops []Op
	// Probes are the operations used for observational-equivalence
	// checks; Ops is used when nil.
	Probes []Op
	// Invariant, if non-nil, is an additional predicate checked on every
	// abstract state the store produces (e.g. the queue axioms of §6.2).
	Invariant func(abs *AbstractState[Op, Val]) bool
	// Bounds are the recommended exploration bounds; the zero value means
	// DefaultConfig.
	Bounds Config
}

// harness assembles the certification harness for the descriptor.
func (d Datatype[S, Op, Val]) harness() *sim.Harness[S, Op, Val] {
	return &sim.Harness[S, Op, Val]{
		Name:      d.Name,
		Impl:      d.Impl,
		Spec:      d.Spec,
		Rsim:      d.Rsim,
		ValEq:     d.ValEq,
		Ops:       d.Ops,
		Probes:    d.Probes,
		Invariant: d.Invariant,
	}
}

// Registered is the type-erased view of a registered Datatype, uniform
// across heterogeneous type parameters so the registry can be iterated.
type Registered interface {
	// Name identifies the datatype.
	Name() string
	// Config returns the recommended exploration bounds.
	Config() Config
	// Certify runs the certification harness under the given bounds,
	// checking the paper's proof obligations at every transition.
	Certify(cfg Config) Report
	// CodecRoundTrip drives a seeded random walk of the operation
	// alphabet and, at every state, checks that Decode(Encode(s)) is
	// observationally equal to s, that re-encoding is byte-identical, and
	// that the content-address hash is stable.
	CodecRoundTrip(seed int64, steps int) error

	sealed()
}

type registered[S, Op, Val any] struct {
	d Datatype[S, Op, Val]
}

func (r registered[S, Op, Val]) sealed() {}

func (r registered[S, Op, Val]) Name() string { return r.d.Name }

func (r registered[S, Op, Val]) Config() Config { return r.d.Bounds }

func (r registered[S, Op, Val]) Certify(cfg Config) Report {
	return r.d.harness().Certify(cfg)
}

func (r registered[S, Op, Val]) CodecRoundTrip(seed int64, steps int) error {
	d := r.d
	if len(d.Ops) == 0 {
		return fmt.Errorf("%s: empty operation alphabet", d.Name)
	}
	probes := d.Probes
	if len(probes) == 0 {
		probes = d.Ops
	}
	rng := rand.New(rand.NewSource(seed))
	s := d.Impl.Init()
	for i := 0; i <= steps; i++ {
		enc := d.Codec.Encode(s)
		dec, err := d.Codec.Decode(enc)
		if err != nil {
			return fmt.Errorf("%s: step %d: decode: %w", d.Name, i, err)
		}
		// Re-encoding the decoded state must reproduce the payload bit
		// for bit — content addressing depends on it.
		enc2 := d.Codec.Encode(dec)
		if !bytes.Equal(enc, enc2) {
			return fmt.Errorf("%s: step %d: re-encode differs (%d vs %d bytes)", d.Name, i, len(enc), len(enc2))
		}
		if sha256.Sum256(enc) != sha256.Sum256(enc2) {
			return fmt.Errorf("%s: step %d: content hash unstable", d.Name, i)
		}
		// The decoded state must be observationally equal to the
		// original (codecs may normalize representation, e.g. rebalance
		// a tree, but never change observable behaviour).
		if !core.ObsEquiv(d.Impl, probes, d.ValEq, s, dec, Timestamp(1<<40)+Timestamp(i)) {
			return fmt.Errorf("%s: step %d: decoded state observationally differs", d.Name, i)
		}
		op := d.Ops[rng.Intn(len(d.Ops))]
		s, _ = d.Impl.Do(op, s, Timestamp(i+1))
	}
	return nil
}

var (
	regMu    sync.RWMutex
	regOrder []string
	regByKey = make(map[string]Registered)
)

// Register adds a descriptor to the global registry and returns it
// unchanged (so package-level descriptor variables register themselves).
// Empty names, missing implementation or codec, and duplicate names
// panic: registration is init-time wiring, not a runtime operation. A
// zero Bounds field is replaced with DefaultConfig.
func Register[S, Op, Val any](d Datatype[S, Op, Val]) Datatype[S, Op, Val] {
	if d.Name == "" {
		panic("peepul: Register: empty datatype name")
	}
	if d.Impl == nil {
		panic("peepul: Register: " + d.Name + " has no implementation")
	}
	if d.Codec == nil {
		panic("peepul: Register: " + d.Name + " has no codec")
	}
	if d.Bounds == (Config{}) {
		d.Bounds = sim.DefaultConfig()
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByKey[d.Name]; dup {
		panic("peepul: Register: duplicate datatype name " + d.Name)
	}
	regByKey[d.Name] = registered[S, Op, Val]{d: d}
	regOrder = append(regOrder, d.Name)
	return d
}

// Lookup returns the registered datatype named name.
func Lookup(name string) (Registered, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := regByKey[name]
	return r, ok
}

// All returns every registered datatype in registration order (the
// built-in library registers in the order of the paper's Table 3).
func All() []Registered {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Registered, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, regByKey[name])
	}
	return out
}

// Names returns every registered datatype name in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}
