package peepul_test

import (
	"slices"
	"testing"

	"repro/peepul"
)

// TestDurableRestartResume: a node opened with WithStorage, killed
// (closed) and reopened over the same directory resumes its objects
// with full history — same state, same head, and fresh operations keep
// dominating recovered timestamps.
func TestDurableRestartResume(t *testing.T) {
	dir := t.TempDir()
	n, err := peepul.NewNode("alice", 1, peepul.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	log, err := peepul.Open(n, peepul.MLog, "notes")
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"one", "two", "three"} {
		if _, err := log.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: msg}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := log.State()
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := log.StorageStats(); !ok || st.Records == 0 {
		t.Fatalf("durable object reported no storage activity: %+v ok=%v", st, ok)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n2, err := peepul.NewNode("alice", 1, peepul.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	log2, err := peepul.Open(n2, peepul.MLog, "notes")
	if err != nil {
		t.Fatalf("reopen after restart: %v", err)
	}
	got, err := log2.State()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("restart lost history: got %v want %v", got, want)
	}
	if _, err := log2.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "four"}); err != nil {
		t.Fatal(err)
	}
	after, _ := log2.State()
	if len(after) != len(want)+1 || after[0].T <= want[0].T {
		t.Fatalf("post-restart operation does not extend recovered history: %v", after)
	}
}

// TestStorageStatsCheckpoint: StorageStats reports the checkpoint
// machinery — checkpoints written at the configured cadence, the age of
// the newest one (records since it), and how the last open recovered:
// "cold" for a fresh directory, "checkpoint" after a clean restart.
func TestStorageStatsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	n, err := peepul.NewNode("alice", 1,
		peepul.WithStorage(dir), peepul.WithCheckpointEvery(4), peepul.WithVerifyOnOpen(true))
	if err != nil {
		t.Fatal(err)
	}
	log, err := peepul.Open(n, peepul.MLog, "notes")
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := log.StorageStats(); !ok || st.RecoveryMode != "cold" {
		t.Fatalf("fresh durable object: RecoveryMode = %q ok=%v, want cold", st.RecoveryMode, ok)
	}
	for i := 0; i < 10; i++ {
		if _, err := log.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := log.StorageStats()
	if !ok {
		t.Fatal("durable object reported no storage")
	}
	if st.Checkpoints == 0 {
		t.Fatalf("no checkpoints after 10 ops at cadence 4: %+v", st)
	}
	if st.CheckpointAge == 0 || st.CheckpointAge >= st.Records {
		t.Fatalf("CheckpointAge = %d with %d records — expected a mid-session age between the two", st.CheckpointAge, st.Records)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n2, err := peepul.NewNode("alice", 1,
		peepul.WithStorage(dir), peepul.WithCheckpointEvery(4), peepul.WithVerifyOnOpen(true))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	log2, err := peepul.Open(n2, peepul.MLog, "notes")
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := log2.StorageStats()
	if st2.RecoveryMode != "checkpoint" {
		t.Fatalf("after clean restart: RecoveryMode = %q, want checkpoint", st2.RecoveryMode)
	}
	if st2.CheckpointAge != 0 {
		t.Fatalf("after clean restart: CheckpointAge = %d, want 0 (close wrote a final checkpoint)", st2.CheckpointAge)
	}
}

// TestDurableDatatypeMismatch: reopening an object directory under a
// different datatype must fail loudly, never merge incompatible states.
func TestDurableDatatypeMismatch(t *testing.T) {
	dir := t.TempDir()
	n, err := peepul.NewNode("alice", 1, peepul.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peepul.Open(n, peepul.MLog, "thing"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := peepul.NewNode("alice", 1, peepul.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if _, err := peepul.Open(n2, peepul.IncCounter, "thing"); err == nil {
		t.Fatal("reopening an mlog log as a counter succeeded")
	}
}

// TestRestartThenSync: persist a node, restart it from disk, delta-sync
// with a live peer — final states, heads and shipped-commit counts must
// match a control pair that never restarted.
func TestRestartThenSync(t *testing.T) {
	runScenario := func(t *testing.T, restart bool) (state peepul.MLogState, commitsRecv int64) {
		t.Helper()
		dir := t.TempDir()
		// Live peer "bob" stays up the whole time.
		bob, err := peepul.NewNode("bob", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer bob.Close()
		bobLog, err := peepul.Open(bob, peepul.MLog, "notes")
		if err != nil {
			t.Fatal(err)
		}
		if err := bob.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}

		alice, err := peepul.NewNode("alice", 1, peepul.WithStorage(dir))
		if err != nil {
			t.Fatal(err)
		}
		aliceLog, err := peepul.Open(alice, peepul.MLog, "notes")
		if err != nil {
			t.Fatal(err)
		}
		// Phase 1: both sides write, one sync round converges them.
		for i := 0; i < 5; i++ {
			if _, err := aliceLog.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "a"}); err != nil {
				t.Fatal(err)
			}
			if _, err := bobLog.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "b"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := alice.SyncWith(bob.Addr()); err != nil {
			t.Fatal(err)
		}
		// Bob moves on while alice is (possibly) down.
		for i := 0; i < 3; i++ {
			if _, err := bobLog.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "offline"}); err != nil {
				t.Fatal(err)
			}
		}
		if restart {
			if err := alice.Close(); err != nil {
				t.Fatal(err)
			}
			alice, err = peepul.NewNode("alice", 1, peepul.WithStorage(dir))
			if err != nil {
				t.Fatal(err)
			}
			aliceLog, err = peepul.Open(alice, peepul.MLog, "notes")
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
		}
		defer alice.Close()
		// Phase 2: the (restarted) node delta-syncs with the live peer.
		// Only this sync's traffic is compared — sync counters are
		// session-scoped, so the meaningful invariant is that the
		// recovered frontier makes the post-restart sync ship exactly
		// what the control's would, not re-fetch held history.
		before := aliceLog.Stats().CommitsRecv
		if err := alice.SyncWith(bob.Addr()); err != nil {
			t.Fatalf("sync after restart=%v: %v", restart, err)
		}
		st, err := aliceLog.State()
		if err != nil {
			t.Fatal(err)
		}
		return st, aliceLog.Stats().CommitsRecv - before
	}

	plainState, plainRecv := runScenario(t, false)
	restartState, restartRecv := runScenario(t, true)
	if !slices.Equal(plainState, restartState) {
		t.Fatalf("restarted run diverged:\n restarted: %v\n control:   %v", restartState, plainState)
	}
	// The recovered frontier must be as good as the live one: the
	// restarted node may not re-fetch history it already holds on disk.
	if restartRecv != plainRecv {
		t.Fatalf("restarted run received %d commits, control received %d — recovered frontier is not intact", restartRecv, plainRecv)
	}
}
