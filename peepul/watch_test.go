package peepul_test

// Watch semantics at the public API: events fire on remote merges and
// never on local commits, slow consumers lose oldest-first but always
// see the newest head, and watchers detach — without leaking their
// goroutine — on context cancellation or node close.

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/peepul"
)

// watchPair builds two listening counter nodes with no mesh peers, so
// every merge in these tests is driven by an explicit SyncWith.
func watchPair(t *testing.T) (n1, n2 *peepul.Node, h1, h2 *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]) {
	t.Helper()
	mk := func(name string, id int) (*peepul.Node, *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]) {
		n, err := peepul.NewNode(name, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		h, err := peepul.Open(n, peepul.PNCounter, "hits")
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return n, h
	}
	n1, h1 = mk("w1", 1)
	n2, h2 = mk("w2", 2)
	return n1, n2, h1, h2
}

// TestWatchFiresOnRemoteMergeOnly: the server's merge of a peer's
// commits fires its watcher (From names the peer); the client whose own
// state the peer merely adopted sees nothing; local Do never fires.
func TestWatchFiresOnRemoteMergeOnly(t *testing.T) {
	n1, n2, h1, h2 := watchPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1 := h1.Watch(ctx)
	w2 := h2.Watch(ctx)

	// A local commit fires no watcher.
	if _, err := h1.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w1:
		t.Fatalf("local Do produced a watch event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// Syncing moves n2's head with n1's commits: n2's watcher fires with
	// the peer's name. n1 only fast-forwarded the peer to its own head,
	// so the reply moves nothing and n1's watcher stays silent.
	if err := n1.SyncWith(n2.Addr()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w2:
		if ev.From != "w1" || ev.Object != "hits" {
			t.Fatalf("watch event = %+v, want From=w1 Object=hits", ev)
		}
		if head, err := h2.Store().HeadHash(h2.Branch()); err != nil || ev.Head != head {
			t.Fatalf("event head %x, branch head %x (err %v)", ev.Head, head, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no watch event on the merging side")
	}
	select {
	case ev := <-w1:
		t.Fatalf("fast-forwarded-to client got a watch event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// The reverse flow fires n1's watcher with From=w2.
	if _, err := h2.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := n1.SyncWith(n2.Addr()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w1:
		if ev.From != "w2" {
			t.Fatalf("event From = %q, want w2", ev.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no watch event after merging the peer's commit")
	}
}

// TestWatchDropsOldestUnderSlowConsumer: an unread watcher holds the
// newest events, not the stalest — the last event drained always names
// the branch's final head.
func TestWatchDropsOldestUnderSlowConsumer(t *testing.T) {
	n1, n2, h1, h2 := watchPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := h1.Watch(ctx)

	// 20 remote merges, none consumed: more than the watch buffer holds.
	const merges = 20
	for i := 0; i < merges; i++ {
		if _, err := h2.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := n1.SyncWith(n2.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	var drained []peepul.WatchEvent
	for {
		select {
		case ev := <-w:
			drained = append(drained, ev)
			continue
		default:
		}
		break
	}
	if len(drained) == 0 || len(drained) >= merges {
		t.Fatalf("drained %d events, want some but fewer than %d (drop-oldest)", len(drained), merges)
	}
	head, err := h1.Store().HeadHash(h1.Branch())
	if err != nil {
		t.Fatal(err)
	}
	if last := drained[len(drained)-1]; last.Head != head {
		t.Fatalf("newest drained event head %x, want current branch head %x", last.Head, head)
	}
}

// TestWatchCancelDetaches: cancelling a watcher's context closes its
// channel and releases its goroutine; the object keeps working and
// other watchers keep firing.
func TestWatchCancelDetaches(t *testing.T) {
	n1, n2, h1, h2 := watchPair(t)
	before := runtime.NumGoroutine()

	const watchers = 8
	ctx, cancel := context.WithCancel(context.Background())
	chans := make([]<-chan peepul.WatchEvent, watchers)
	for i := range chans {
		chans[i] = h2.Watch(ctx)
	}
	cancel()
	for _, w := range chans {
		select {
		case _, ok := <-w:
			if ok {
				t.Fatal("cancelled watcher delivered an event")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled watcher's channel never closed")
		}
	}
	// The detach goroutines exit; poll because close-to-exit is async.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines %d after cancel, want back to %d", got, before)
	}

	// A fresh watcher on the same object still fires.
	w := h2.Watch(context.Background())
	if _, err := h1.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n1.SyncWith(n2.Addr()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher added after a cancel never fired")
	}
}

// TestWatchClosesOnNodeClose: closing the node closes every watcher
// channel.
func TestWatchClosesOnNodeClose(t *testing.T) {
	n, err := peepul.NewNode("solo", 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := peepul.Open(n, peepul.PNCounter, "hits")
	if err != nil {
		t.Fatal(err)
	}
	w := h.Watch(context.Background())
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-w:
		if ok {
			t.Fatal("closing node delivered an event instead of closing the channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher channel still open after node close")
	}
}
