package peepul

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/replica"
	"repro/internal/store"
)

// NodeOption adjusts node construction; options plumb through to every
// object the node opens — store tunables and, for durable nodes, the
// storage directory and fsync policy.
type NodeOption = replica.NodeOption

// WithFrontierDense sets the dense generation window of frontier
// sampling: every ancestor within n generations of the head joins the
// sync-negotiation sample, so divergences shorter than n cut exactly.
func WithFrontierDense(n int) NodeOption {
	return replica.WithStoreOptions(store.WithFrontierDense(n))
}

// WithFrontierMaxHave caps the number of sampled ancestor hashes a
// frontier advertises — the constant factor of a re-sync's wire cost.
func WithFrontierMaxHave(n int) NodeOption {
	return replica.WithStoreOptions(store.WithFrontierMaxHave(n))
}

// WithFrontierWalkBudget caps the commits visited while sampling a
// frontier, bounding negotiation cost on huge DAGs. Past the budget the
// sample is merely sparser; correctness is unaffected.
func WithFrontierWalkBudget(n int) NodeOption {
	return replica.WithStoreOptions(store.WithFrontierWalkBudget(n))
}

// WithSnapshotEvery sets the pack layer's snapshot spacing in every
// object store the node opens: states are delta-chained to their parent
// with a full snapshot at most every n links, so resident bytes track the
// operations, not the state size, while no cold read walks more than n
// patches. 1 stores every state whole (the pre-pack format).
func WithSnapshotEvery(n int) NodeOption {
	return replica.WithStoreOptions(store.WithSnapshotEvery(n))
}

// WithStateCacheSize bounds each object store's LRU of decoded states:
// branch heads and recent merge bases stay hot, deep history is
// re-materialized on demand instead of pinning memory forever.
func WithStateCacheSize(n int) NodeOption {
	return replica.WithStoreOptions(store.WithStateCacheSize(n))
}

// WithStorage makes the node durable: every object opened on it keeps a
// segmented, checksummed pack log in its own subdirectory of dir —
// every commit and delta-chained state object appended as it happens,
// compacted whenever the store garbage-collects. Reopening a node of
// the same name over the same directory resumes each object with its
// full history, branches, sync frontiers and clocks intact; a log
// damaged by a crash recovers to a verified prefix and re-converges
// through ordinary delta sync.
func WithStorage(dir string) NodeOption { return replica.WithStorage(dir) }

// FsyncPolicy selects what a machine crash may cost a durable node:
// FsyncNever (the default) flushes to the OS on every operation and
// fsyncs only sealed segments; FsyncAlways fsyncs every operation.
type FsyncPolicy = disk.Policy

// Fsync policies for WithFsync.
const (
	FsyncNever  FsyncPolicy = disk.FsyncNever
	FsyncAlways FsyncPolicy = disk.FsyncAlways
)

// WithFsync sets a durable node's fsync policy; no effect without
// WithStorage.
func WithFsync(p FsyncPolicy) NodeOption { return replica.WithFsync(p) }

// WithCheckpointEvery sets the checkpoint cadence of a durable node's
// object logs: every n operations the log seals its segment and writes
// an index checkpoint (the full commit/pack index, no state bytes), so
// reopening the node seeks to the checkpoint and replays only the records
// after it — flat-time restart however deep the history. Checkpoints are
// also written after compaction and on clean close. The cadence is a
// floor: since each checkpoint snapshots the whole index, deep logs
// throttle to geometric spacing so checkpoint bytes stay linear in the
// log (a clean close still checkpoints, so clean reopens stay flat).
// The default cadence is 1024; zero or negative disables checkpoints
// entirely. No effect without WithStorage.
func WithCheckpointEvery(n int) NodeOption { return replica.WithCheckpointEvery(n) }

// WithVerifyOnOpen(true) restores eager verification: every recovered
// object's pack is fully reassembled and decoded at open, so corruption
// fails the open instead of a later read. The default (false) validates
// the commit index and leaves state bytes on disk until first use —
// the lazy open that keeps restart time independent of history size.
// (Before checkpointed recovery existed, the eager behaviour was
// unconditional.) No effect without WithStorage.
func WithVerifyOnOpen(v bool) NodeOption { return replica.WithVerifyOnOpen(v) }

// StorageStats is the pack-log accounting of one durable object: live
// segments and bytes on disk, records appended and recovered, what
// recovery truncated, fsyncs and compactions, checkpoints written, the
// records accumulated since the last checkpoint (CheckpointAge — the
// suffix the next open replays), and how the last open recovered
// (RecoveryMode: "checkpoint", "replay" or "cold").
type StorageStats = disk.Stats

// Node is one replica hosting a set of named replicated objects. Create
// objects with Open; replicate with Listen/SyncWith. Safe for concurrent
// use, and read-parallel: per-object queries (State, Stats, frontier
// negotiation, delta export) share a read lock on the object's store and
// run concurrently with each other, serializing only against mutations
// (Do, Pull, Sync). Merge cost is O(divergence) — the store's
// generation-guided DAG walks never descend past the merge base — so
// long-lived replicas pull as fast as freshly created ones.
type Node struct {
	rn *replica.Node
}

// NewNode creates a replica named name with fleet-unique id replicaID in
// [0, MaxReplicaID]. The name doubles as the node's branch name in every
// object's store and as its peer identity on the wire; names and ids must
// be unique across the fleet.
func NewNode(name string, replicaID int, opts ...NodeOption) (*Node, error) {
	rn, err := replica.NewNode(name, replicaID, opts...)
	if err != nil {
		return nil, err
	}
	return &Node{rn: rn}, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.rn.Name() }

// Objects returns the names of the objects the node hosts, sorted.
func (n *Node) Objects() []string { return n.rn.Objects() }

// Listen starts serving sync requests on addr ("127.0.0.1:0" picks a
// free port).
func (n *Node) Listen(addr string) error { return n.rn.Listen(addr) }

// Addr returns the listening address, or "" before Listen.
func (n *Node) Addr() string { return n.rn.Addr() }

// Close stops serving and waits for in-flight sync handlers.
func (n *Node) Close() error { return n.rn.Close() }

// SyncWith synchronizes every object this node hosts with the peer at
// addr over a single connection, object by object: frontiers are
// exchanged per object and only missing commits cross the wire. Objects
// the peer does not host are skipped (counted in Stats().Misses). After a
// successful exchange both nodes hold equal states on every shared
// object.
func (n *Node) SyncWith(addr string) error { return n.rn.SyncWith(addr) }

// Stats returns the node's aggregate sync counters.
func (n *Node) Stats() SyncStats { return n.rn.Stats() }

// ObjectStats returns one object's sync counters.
func (n *Node) ObjectStats(object string) SyncStats { return n.rn.ObjectStats(object) }

// SetFullSyncOnly forces outgoing syncs onto the legacy full-history
// protocol; benchmarks use it to compare against delta sync.
func (n *Node) SetFullSyncOnly(v bool) { n.rn.SetFullSyncOnly(v) }

// SetReconEnabled switches the range-fingerprint set-reconciliation
// dialect on or off (default on) for both sync roles; disabled, the
// node negotiates the sampled-frontier dialects instead. Benchmarks use
// it to compare negotiation strategies.
func (n *Node) SetReconEnabled(v bool) { n.rn.SetReconEnabled(v) }

// Open returns a typed handle on node n's object named object,
// creating the object with datatype d if it does not exist yet
// (get-or-create, like opening a key in an Irmin repository). Re-opening
// an existing object requires the same datatype; a mismatch is an error,
// never a corrupted merge.
func Open[S, Op, Val any](n *Node, d Datatype[S, Op, Val], object string) (*Handle[S, Op, Val], error) {
	if d.Name == "" || d.Impl == nil || d.Codec == nil {
		return nil, fmt.Errorf("peepul: Open %q: incomplete datatype descriptor", object)
	}
	obj, err := replica.Ensure[S, Op, Val](n.rn, object, d.Name, d.Impl, d.Codec)
	if err != nil {
		return nil, err
	}
	return &Handle[S, Op, Val]{node: n, object: object, obj: obj}, nil
}

// Handle is a typed view of one named object on a node. Do/State operate
// on the node's own branch; Fork/DoOn/Pull/Sync manipulate additional
// local branches of the same object (the paper's branch-and-merge
// programming model inside one replica).
type Handle[S, Op, Val any] struct {
	node   *Node
	object string
	obj    *replica.TypedObject[S, Op, Val]
}

// Object returns the object's name on the node.
func (h *Handle[S, Op, Val]) Object() string { return h.object }

// Node returns the node hosting the object.
func (h *Handle[S, Op, Val]) Node() *Node { return h.node }

// Branch returns the node's branch name (the branch Do operates on).
func (h *Handle[S, Op, Val]) Branch() string { return h.obj.Branch() }

// Do applies an operation on the node's branch with a fresh timestamp
// and returns the operation's value.
func (h *Handle[S, Op, Val]) Do(op Op) (Val, error) { return h.obj.Do(op) }

// State returns the current state of the node's branch.
func (h *Handle[S, Op, Val]) State() (S, error) { return h.obj.State() }

// Fork creates local branch name from the node branch's current head
// (the CREATEBRANCH rule).
func (h *Handle[S, Op, Val]) Fork(name string) error {
	return h.obj.Store().Fork(h.obj.Branch(), name)
}

// DoOn applies an operation on the named local branch.
func (h *Handle[S, Op, Val]) DoOn(branch string, op Op) (Val, error) {
	return h.obj.Store().Apply(branch, op)
}

// StateOf returns the current state of the named local branch.
func (h *Handle[S, Op, Val]) StateOf(branch string) (S, error) {
	return h.obj.Store().Head(branch)
}

// Pull merges branch src into branch dst (the MERGE rule): a three-way
// MRDT merge over a base carrying exactly the branches' common
// operations (the store's Ψ_lca guarantee). A pull onto the node branch
// waits out any in-flight sync exchange and is pushed to mesh peers
// like a Do.
func (h *Handle[S, Op, Val]) Pull(dst, src string) error {
	return h.obj.PullLocal(dst, src)
}

// Sync converges two local branches atomically: a pulls b, then b
// fast-forwards to the merge commit. After Sync both branches hold equal
// states. Like Pull, involving the node branch coordinates with the
// node's sync exchanges and notifies mesh peers.
func (h *Handle[S, Op, Val]) Sync(a, b string) error {
	return h.obj.SyncLocal(a, b)
}

// Stats returns the object's sync counters on this node.
func (h *Handle[S, Op, Val]) Stats() SyncStats { return h.node.ObjectStats(h.object) }

// StorageStats reports the object's on-disk pack-log accounting; ok is
// false when the node was opened without WithStorage.
func (h *Handle[S, Op, Val]) StorageStats() (StorageStats, bool) { return h.obj.StorageStats() }

// Store exposes the object's embedded versioned store for advanced use
// (branch listing, export/import, garbage collection).
func (h *Handle[S, Op, Val]) Store() *store.Store[S, Op, Val] { return h.obj.Store() }
