package peepul

import (
	"repro/internal/alphamap"
	"repro/internal/chat"
	"repro/internal/counter"
	"repro/internal/ewflag"
	"repro/internal/gmap"
	"repro/internal/gset"
	"repro/internal/lwwreg"
	"repro/internal/mlog"
	"repro/internal/orset"
	"repro/internal/queue"
	"repro/internal/wire"
)

// The built-in library: every datatype of the paper's Table 3 (plus the
// disable-wins dual), each registered once with its implementation,
// codec, specification, simulation relation, certification alphabet and
// exploration bounds. Everything downstream — Open, peepul-verify,
// peepul-bench, the codec round-trip suite — iterates these
// registrations instead of hand-wiring types.

// Operation and value vocabulary for the flagship datatypes, re-exported
// so applications consume only this package.
type (
	// CounterOp is an increment/PN-counter operation.
	CounterOp = counter.Op
	// CounterVal is a counter operation's return value.
	CounterVal = counter.Val
	// CounterPNState is the PN-counter state (increment and decrement
	// tallies).
	CounterPNState = counter.PNState
	// MLogOp is a mergeable-log operation.
	MLogOp = mlog.Op
	// MLogVal is a mergeable-log operation's return value.
	MLogVal = mlog.Val
	// MLogState is the mergeable-log state (entries newest first).
	MLogState = mlog.State
	// QueueOp is a functional-queue operation.
	QueueOp = queue.Op
	// QueueVal is a functional-queue operation's return value.
	QueueVal = queue.Val
	// QueueState is the functional-queue state.
	QueueState = queue.State
	// OrSetOp is an OR-set operation.
	OrSetOp = orset.Op
	// OrSetVal is an OR-set operation's return value.
	OrSetVal = orset.Val
	// ChatOp is an IRC-style chat operation.
	ChatOp = chat.Op
	// ChatVal is a chat operation's return value.
	ChatVal = chat.Val
	// ChatState is the chat state: an α-map from channel names to
	// mergeable logs (bindings sorted by channel, entries newest first).
	ChatState = chat.State
)

// Operation kinds of the flagship datatypes.
const (
	CounterRead = counter.Read
	CounterInc  = counter.Inc
	CounterDec  = counter.Dec

	MLogRead   = mlog.Read
	MLogAppend = mlog.Append

	QueueEnqueue = queue.Enqueue
	QueueDequeue = queue.Dequeue

	OrSetRead   = orset.Read
	OrSetAdd    = orset.Add
	OrSetRemove = orset.Remove
	OrSetLookup = orset.Lookup

	ChatSend = chat.Send
	ChatRead = chat.Read
)

// IncCounter is the increment-only counter.
var IncCounter = Register(Datatype[int64, counter.Op, counter.Val]{
	Name:  "inc-counter",
	Impl:  counter.IncCounter{},
	Codec: wire.IncCounter{},
	Spec:  counter.IncSpec,
	Rsim:  counter.IncRsim,
	ValEq: counter.ValEq,
	Ops: []counter.Op{
		{Kind: counter.Read},
		{Kind: counter.Inc, N: 1},
		{Kind: counter.Inc, N: 2},
	},
	Probes: []counter.Op{{Kind: counter.Read}},
})

// PNCounter is the increment/decrement counter.
var PNCounter = Register(Datatype[counter.PNState, counter.Op, counter.Val]{
	Name:  "pn-counter",
	Impl:  counter.PNCounter{},
	Codec: wire.PNCounter{},
	Spec:  counter.PNSpec,
	Rsim:  counter.PNRsim,
	ValEq: counter.ValEq,
	Ops: []counter.Op{
		{Kind: counter.Read},
		{Kind: counter.Inc, N: 1},
		{Kind: counter.Dec, N: 1},
	},
	Probes: []counter.Op{{Kind: counter.Read}},
})

// EWFlag is the enable-wins flag.
var EWFlag = Register(Datatype[ewflag.State, ewflag.Op, ewflag.Val]{
	Name:  "ew-flag",
	Impl:  ewflag.Flag{},
	Codec: wire.EWFlag{},
	Spec:  ewflag.Spec,
	Rsim:  ewflag.Rsim,
	ValEq: ewflag.ValEq,
	Ops: []ewflag.Op{
		{Kind: ewflag.Read},
		{Kind: ewflag.Enable},
		{Kind: ewflag.Disable},
	},
	Probes: []ewflag.Op{{Kind: ewflag.Read}},
})

// DWFlag is the disable-wins flag — the dual policy, not in the paper's
// library; certifying it shows the framework is policy agnostic.
var DWFlag = Register(Datatype[ewflag.DWState, ewflag.Op, ewflag.Val]{
	Name:  "dw-flag",
	Impl:  ewflag.DWFlag{},
	Codec: wire.DWFlag{},
	Spec:  ewflag.DWSpec,
	Rsim:  ewflag.DWRsim,
	ValEq: ewflag.ValEq,
	Ops: []ewflag.Op{
		{Kind: ewflag.Read},
		{Kind: ewflag.Enable},
		{Kind: ewflag.Disable},
	},
	Probes: []ewflag.Op{{Kind: ewflag.Read}},
})

// LWWReg is the last-writer-wins register.
var LWWReg = Register(Datatype[lwwreg.State, lwwreg.Op, lwwreg.Val]{
	Name:  "lww-register",
	Impl:  lwwreg.Reg{},
	Codec: wire.LWWReg{},
	Spec:  lwwreg.Spec,
	Rsim:  lwwreg.Rsim,
	ValEq: lwwreg.ValEq,
	Ops: []lwwreg.Op{
		{Kind: lwwreg.Read},
		{Kind: lwwreg.Write, V: 1},
		{Kind: lwwreg.Write, V: 2},
	},
	Probes: []lwwreg.Op{{Kind: lwwreg.Read}},
})

// GSet is the grow-only set.
var GSet = Register(Datatype[gset.State, gset.Op, gset.Val]{
	Name:  "g-set",
	Impl:  gset.Set{},
	Codec: wire.GSet{},
	Spec:  gset.Spec,
	Rsim:  gset.Rsim,
	ValEq: gset.ValEq,
	Ops: []gset.Op{
		{Kind: gset.Read},
		{Kind: gset.Add, E: 1},
		{Kind: gset.Add, E: 2},
		{Kind: gset.Lookup, E: 1},
	},
	Probes: []gset.Op{{Kind: gset.Read}},
})

// GMap is the grow-only map.
var GMap = Register(Datatype[gmap.State, gmap.Op, gmap.Val]{
	Name:  "g-map",
	Impl:  gmap.Map{},
	Codec: wire.GMap{},
	Spec:  gmap.Spec,
	Rsim:  gmap.Rsim,
	ValEq: gmap.ValEq,
	Ops: []gmap.Op{
		{Kind: gmap.Get, K: "a"},
		{Kind: gmap.Put, K: "a", V: 1},
		{Kind: gmap.Put, K: "a", V: 2},
		{Kind: gmap.Put, K: "b", V: 1},
		{Kind: gmap.Keys},
	},
	Probes: []gmap.Op{
		{Kind: gmap.Get, K: "a"},
		{Kind: gmap.Get, K: "b"},
		{Kind: gmap.Keys},
	},
})

// MLog is the mergeable log (§5.2).
var MLog = Register(Datatype[mlog.State, mlog.Op, mlog.Val]{
	Name:  "mergeable-log",
	Impl:  mlog.Log{},
	Codec: wire.MLog{},
	Spec:  mlog.Spec,
	Rsim:  mlog.Rsim,
	ValEq: mlog.ValEq,
	Ops: []mlog.Op{
		{Kind: mlog.Read},
		{Kind: mlog.Append, Msg: "x"},
		{Kind: mlog.Append, Msg: "y"},
	},
	Probes: []mlog.Op{{Kind: mlog.Read}},
})

func orsetOps() []orset.Op {
	return []orset.Op{
		{Kind: orset.Read},
		{Kind: orset.Add, E: 1},
		{Kind: orset.Add, E: 2},
		{Kind: orset.Remove, E: 1},
		{Kind: orset.Lookup, E: 1},
	}
}

func orsetProbes() []orset.Op {
	return []orset.Op{{Kind: orset.Read}}
}

// OrSet is the unoptimized OR-set (§2.1.1).
var OrSet = Register(Datatype[orset.State, orset.Op, orset.Val]{
	Name:   "or-set",
	Impl:   orset.OrSet{},
	Codec:  wire.OrSet{},
	Spec:   orset.Spec,
	Rsim:   orset.Rsim,
	ValEq:  orset.ValEq,
	Ops:    orsetOps(),
	Probes: orsetProbes(),
})

// OrSetSpace is the space-efficient OR-set (§2.1.2).
var OrSetSpace = Register(Datatype[orset.SpaceState, orset.Op, orset.Val]{
	Name:   "or-set-space",
	Impl:   orset.OrSetSpace{},
	Codec:  wire.OrSetSpace{},
	Spec:   orset.Spec,
	Rsim:   orset.RsimSpace,
	ValEq:  orset.ValEq,
	Ops:    orsetOps(),
	Probes: orsetProbes(),
})

// OrSetSpaceTime is the space- and time-efficient OR-set (§7.1).
var OrSetSpaceTime = Register(Datatype[orset.TreeState, orset.Op, orset.Val]{
	Name:   "or-set-spacetime",
	Impl:   orset.OrSetSpaceTime{},
	Codec:  wire.OrSetSpaceTime{},
	Spec:   orset.Spec,
	Rsim:   orset.RsimSpaceTime,
	ValEq:  orset.ValEq,
	Ops:    orsetOps(),
	Probes: orsetProbes(),
})

// Queue is the replicated functional queue (§6), with the queue axioms
// of §6.2 installed as an abstract-state invariant.
var Queue = Register(Datatype[queue.State, queue.Op, queue.Val]{
	Name:  "functional-queue",
	Impl:  queue.Queue{},
	Codec: wire.Queue{},
	Spec:  queue.Spec,
	Rsim:  queue.Rsim,
	ValEq: queue.ValEq,
	Ops: []queue.Op{
		{Kind: queue.Enqueue, V: 1},
		{Kind: queue.Enqueue, V: 2},
		{Kind: queue.Dequeue},
	},
	Probes:    []queue.Op{{Kind: queue.Dequeue}},
	Invariant: queue.Axioms,
	// The axioms are O(n⁴) in the number of events; keep walks shorter.
	Bounds: Config{
		MaxBranches:      2,
		MaxSteps:         4,
		RandomExecutions: 200,
		RandomSteps:      18,
		RandomBranches:   3,
		Seed:             1,
	},
})

// compositionBounds are the exploration bounds shared by the α-map
// composition instances, whose states grow faster per step.
var compositionBounds = Config{
	MaxBranches:      2,
	MaxSteps:         4,
	RandomExecutions: 150,
	RandomSteps:      20,
	RandomBranches:   3,
	Seed:             1,
}

// alphaMapCounterImpl is the α-map instantiated with the PN-counter.
var alphaMapCounterImpl = alphamap.New[counter.PNState, counter.Op, counter.Val](counter.PNCounter{})

// AlphaMapCounter is the generic α-map over PN-counters — the
// composition machinery of §5.3–5.4 certified on a non-trivial inner
// type.
var AlphaMapCounter = Register(Datatype[alphamap.State[counter.PNState], alphamap.Op[counter.Op], counter.Val]{
	Name:  "alpha-map<pn-counter>",
	Impl:  alphaMapCounterImpl,
	Codec: wire.AlphaMap[counter.PNState]{Inner: wire.PNCounter{}},
	Spec:  alphamap.Spec[counter.Op, counter.Val](counter.PNSpec),
	Rsim:  alphamap.Rsim[counter.PNState, counter.Op, counter.Val](alphaMapCounterImpl, counter.PNRsim),
	ValEq: counter.ValEq,
	Ops: []alphamap.Op[counter.Op]{
		{K: "a", Inner: counter.Op{Kind: counter.Inc, N: 1}},
		{K: "a", Inner: counter.Op{Kind: counter.Dec, N: 1}},
		{K: "b", Inner: counter.Op{Kind: counter.Inc, N: 1}},
		{Get: true, K: "a", Inner: counter.Op{Kind: counter.Read}},
	},
	Probes: []alphamap.Op[counter.Op]{
		{Get: true, K: "a", Inner: counter.Op{Kind: counter.Read}},
		{Get: true, K: "b", Inner: counter.Op{Kind: counter.Read}},
	},
	Bounds: compositionBounds,
})

// alphaMapOrSetImpl is the α-map instantiated with the space-efficient
// OR-set.
var alphaMapOrSetImpl = alphamap.New[orset.SpaceState, orset.Op, orset.Val](orset.OrSetSpace{})

// AlphaMapOrSet is the α-map over space-efficient OR-sets — a second
// composition instance demonstrating that the derived specification and
// simulation relation are agnostic to the inner data type (§5.3's
// parametric polymorphism).
var AlphaMapOrSet = Register(Datatype[alphamap.State[orset.SpaceState], alphamap.Op[orset.Op], orset.Val]{
	Name:  "alpha-map<or-set-space>",
	Impl:  alphaMapOrSetImpl,
	Codec: wire.AlphaMap[orset.SpaceState]{Inner: wire.OrSetSpace{}},
	Spec:  alphamap.Spec[orset.Op, orset.Val](orset.Spec),
	Rsim:  alphamap.Rsim[orset.SpaceState, orset.Op, orset.Val](alphaMapOrSetImpl, orset.RsimSpace),
	ValEq: orset.ValEq,
	Ops: []alphamap.Op[orset.Op]{
		{K: "a", Inner: orset.Op{Kind: orset.Add, E: 1}},
		{K: "a", Inner: orset.Op{Kind: orset.Remove, E: 1}},
		{K: "b", Inner: orset.Op{Kind: orset.Add, E: 2}},
		{Get: true, K: "a", Inner: orset.Op{Kind: orset.Read}},
	},
	Probes: []alphamap.Op[orset.Op]{
		{Get: true, K: "a", Inner: orset.Op{Kind: orset.Read}},
		{Get: true, K: "b", Inner: orset.Op{Kind: orset.Read}},
	},
	Bounds: compositionBounds,
})

// Chat is the IRC-style chat (§5.1) — the composition α-map over
// mergeable logs, certified end to end.
var Chat = Register(Datatype[chat.State, chat.Op, chat.Val]{
	Name:  "irc-chat",
	Impl:  chat.Chat{},
	Codec: wire.Chat{},
	Spec:  chat.Spec,
	Rsim:  chat.Rsim,
	ValEq: chat.ValEq,
	Ops: []chat.Op{
		{Kind: chat.Send, Ch: "#go", Msg: "hi"},
		{Kind: chat.Send, Ch: "#go", Msg: "yo"},
		{Kind: chat.Send, Ch: "#ml", Msg: "hey"},
		{Kind: chat.Read, Ch: "#go"},
	},
	Probes: []chat.Op{
		{Kind: chat.Read, Ch: "#go"},
		{Kind: chat.Read, Ch: "#ml"},
	},
	Bounds: compositionBounds,
})
