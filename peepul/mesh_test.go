package peepul_test

// Always-on replication at the public API: a fleet configured with
// WithPeers converges with zero application SyncWith calls — the
// acceptance scenario for the mesh daemon.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/peepul"
)

// TestMeshRingConvergence: ten nodes in a one-directional gossip ring,
// each supervising only its successor, converge after concurrent writes
// on every node — no SyncWith anywhere. Convergence is asserted on head
// hashes, not just values: every replica ends on the identical commit.
func TestMeshRingConvergence(t *testing.T) {
	const (
		nodes       = 10
		incsPerNode = 5
	)
	ns := make([]*peepul.Node, nodes)
	hs := make([]*peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal], nodes)
	for i := range ns {
		n, err := peepul.NewNode(fmt.Sprintf("m%d", i), i+1,
			peepul.WithMeshInterval(100*time.Millisecond),
			peepul.WithMeshJitter(20*time.Millisecond),
			peepul.WithMeshBackoff(20*time.Millisecond, 200*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		h, err := peepul.Open(n, peepul.PNCounter, "hits")
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		ns[i], hs[i] = n, h
	}
	// Close the ring: i supervises i+1. The daemon's exchanges are
	// bidirectional (the reply delta flows back), so one direction of
	// supervision suffices for fleet-wide convergence.
	for i := range ns {
		ns[i].AddPeer(ns[(i+1)%nodes].Addr())
	}

	// Concurrent writes on every node while the daemons gossip.
	var wg sync.WaitGroup
	for _, h := range hs {
		wg.Add(1)
		go func(h *peepul.Handle[peepul.CounterPNState, peepul.CounterOp, peepul.CounterVal]) {
			defer wg.Done()
			for j := 0; j < incsPerNode; j++ {
				if _, err := h.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1}); err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(h)
	}
	wg.Wait()

	// Every node must reach the total and the identical head hash.
	const want = nodes * incsPerNode
	deadline := time.Now().Add(60 * time.Second)
	for {
		ref, err := hs[0].Store().HeadHash(hs[0].Branch())
		if err != nil {
			t.Fatal(err)
		}
		converged := true
		for _, h := range hs {
			s, err := h.State()
			if err != nil {
				t.Fatal(err)
			}
			head, err := h.Store().HeadHash(h.Branch())
			if err != nil {
				t.Fatal(err)
			}
			if s.P-s.N != want || head != ref {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for i, h := range hs {
				s, _ := h.State()
				head, _ := h.Store().HeadHash(h.Branch())
				st, _ := ns[i].PeerMeshStats(ns[(i+1)%nodes].Addr())
				t.Logf("node m%d: value=%d head=%x rounds=%d pushes=%d fails=%d consec=%d lastErr=%q",
					i, s.P-s.N, head[:4], st.Rounds, st.Pushes, st.Failures, st.ConsecutiveFailures, st.LastError)
			}
			t.Fatalf("ring did not converge to %d with identical heads", want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The daemon did the work: every node completed exchanges, and the
	// successor link reports healthy.
	for i, n := range ns {
		st, ok := n.PeerMeshStats(ns[(i+1)%nodes].Addr())
		if !ok {
			t.Fatalf("m%d has no stats for its successor", i)
		}
		if st.Rounds+st.Pushes == 0 {
			t.Fatalf("m%d converged with zero completed exchanges: %+v", i, st)
		}
	}
}
