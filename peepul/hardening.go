package peepul

// Node hardening knobs: the transport injection point and the bounds
// that keep one hostile or broken peer from exhausting a node — the
// inbound session cap, the per-operation idle timeout, and the
// whole-session deadline. See DESIGN.md, "Failure model & hardening".

import (
	"time"

	"repro/internal/replica"
)

// Transport is how a node reaches the network: Dial opens client sync
// connections, Listen binds the serving listener. The default is plain
// TCP; tests and benchmarks inject a fault net (internal/faultnet), and
// future authenticated transports plug in the same way.
type Transport = replica.Transport

// TCPTransport is the default Transport: plain TCP with a bounded dial.
type TCPTransport = replica.TCPTransport

// WithTransport makes the node dial and listen through t instead of
// plain TCP.
func WithTransport(t Transport) NodeOption { return replica.WithTransport(t) }

// WithMaxInbound caps the node's concurrent inbound sync sessions
// (default 64): connections accepted past the cap are closed promptly
// and counted in Stats().InboundShed, so a dial storm can never pile up
// an unbounded number of handler goroutines. Zero keeps the default;
// negative removes the cap.
func WithMaxInbound(n int) NodeOption { return replica.WithMaxInbound(n) }

// WithSyncTimeout bounds how long one read or write of a sync exchange
// may stall before the connection errors out (default 30s). A peer that
// keeps making progress can transfer arbitrarily much; one that goes
// silent is cut off instead of wedging the exchange. Zero and below
// keep the default.
func WithSyncTimeout(d time.Duration) NodeOption { return replica.WithSyncTimeout(d) }

// WithSessionTimeout bounds a whole sync session, client or server side
// (default 3m). The idle timeout cannot stop a dribbling peer — one
// byte per idle window is progress forever, and a client exchange
// freezes the node's branches for its duration — so this is the hard
// cap on how long any single session can run. Zero or negative
// disables the bound.
func WithSessionTimeout(d time.Duration) NodeOption { return replica.WithSessionTimeout(d) }

// WithMeshQuarantine tunes how the sync daemon quarantines
// protocol-violating peers: after `after` violations in a row (corrupt
// frames, bad hellos, hash mismatches — without an intervening clean
// exchange) the peer moves to the quarantine retry schedule, min
// doubling to max per further violation (defaults 3, 1m, 15m).
// Transient network failures never quarantine: an unreachable peer
// keeps the ordinary exponential backoff. MeshStats reports the
// quarantine state and its recorded reason per peer. Non-positive
// values keep the defaults.
func WithMeshQuarantine(after int, min, max time.Duration) NodeOption {
	return replica.WithMeshQuarantine(after, min, max)
}
