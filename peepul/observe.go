package peepul

// Observability surface: the flight recorder and metrics registry
// behind WithObservability, and the live debug endpoint behind
// WithDebugAddr. Both are off by default and cost the hot paths one
// nil check per instrumentation site when disabled.

import (
	"io"

	"repro/internal/obs"
	"repro/internal/replica"
)

// Metric is one metric series from the node's registry: name, sorted
// labels, and either a counter/gauge value or histogram buckets.
type Metric = obs.Metric

// Trace is a snapshot of the node's flight recorder — the retained
// sync-session spans and mesh lifecycle events, oldest first.
type Trace = obs.Trace

// Span is one recorded sync session: role, peer, negotiated ladder
// tier, per-phase durations, byte/commit totals and outcome.
type Span = obs.Span

// SpanPhase is one named phase of a sync-session span (negotiate,
// descend, span-probe, ship, import, exchange) with its duration.
type SpanPhase = obs.Phase

// TraceEvent is one mesh lifecycle event (backoff change, quarantine
// enter/lift, outbox overflow) with its reason.
type TraceEvent = obs.Event

// DebugSnapshot is the one-document debug view: node identity,
// aggregate and per-object sync stats, per-peer mesh state, every
// metric series, and the recent trace. Served at
// /debug/peepul/snapshot when WithDebugAddr is set.
type DebugSnapshot = replica.DebugSnapshot

// ObjectDebug is one object's row in a DebugSnapshot.
type ObjectDebug = replica.ObjectDebug

// WithObservability turns on the node's metrics registry and flight
// recorder: wire framing, store merges, disk appends, mesh rounds and
// sync sessions all record into one registry, and each sync session
// leaves a trace span. Read them back with Metrics, WriteMetrics,
// Trace and DebugSnapshot.
func WithObservability() NodeOption { return replica.WithObservability() }

// WithDebugAddr serves the node's live debug endpoint on addr
// ("127.0.0.1:0" picks a free port — read it back with DebugAddr):
// /metrics in Prometheus text format, /debug/peepul/snapshot,
// /debug/peepul/trace (append ?format=text for a human-readable
// timeline), /healthz, and the net/http/pprof profiles under
// /debug/pprof/. Implies WithObservability.
func WithDebugAddr(addr string) NodeOption { return replica.WithDebugAddr(addr) }

// Trace snapshots the node's flight recorder. Empty without
// WithObservability.
func (n *Node) Trace() Trace { return n.rn.Trace() }

// DebugAddr returns the bound debug-endpoint address, "" without
// WithDebugAddr.
func (n *Node) DebugAddr() string { return n.rn.DebugAddr() }

// DebugSnapshot assembles the unified debug document in process — the
// same document WithDebugAddr serves over HTTP.
func (n *Node) DebugSnapshot() DebugSnapshot { return n.rn.DebugSnapshot() }

// Metrics snapshots every metric series of the node's registry, sorted
// by name and labels. Nil without WithObservability.
func (n *Node) Metrics() []Metric {
	reg := n.rn.Registry()
	if reg == nil {
		return nil
	}
	return reg.Snapshot()
}

// WriteMetrics writes the node's registry to w in Prometheus text
// exposition format — what /metrics serves. A no-op without
// WithObservability.
func (n *Node) WriteMetrics(w io.Writer) error {
	reg := n.rn.Registry()
	if reg == nil {
		return nil
	}
	return reg.WriteProm(w)
}

// FormatTrace renders a trace as a human-readable timeline, one line
// per event and per span phase.
func FormatTrace(t Trace) string { return obs.FormatTrace(t) }

// FormatSpan renders one span as a single timeline line.
func FormatSpan(s Span) string { return obs.FormatSpan(s) }
