package peepul_test

import (
	"slices"
	"testing"

	"repro/peepul"
)

// TestRegistryShape: the built-in library registers every datatype of
// Table 3 (plus the disable-wins dual) exactly once, in table order.
func TestRegistryShape(t *testing.T) {
	names := peepul.Names()
	want := []string{
		"inc-counter", "pn-counter", "ew-flag", "dw-flag", "lww-register",
		"g-set", "g-map", "mergeable-log", "or-set", "or-set-space",
		"or-set-spacetime", "functional-queue", "alpha-map<pn-counter>",
		"alpha-map<or-set-space>", "irc-chat",
	}
	if !slices.Equal(names, want) {
		t.Fatalf("registry names = %v, want %v", names, want)
	}
	if len(peepul.All()) != len(want) {
		t.Fatalf("All() returned %d entries", len(peepul.All()))
	}
	for _, name := range want {
		r, ok := peepul.Lookup(name)
		if !ok || r.Name() != name {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if r.Config().RandomExecutions == 0 {
			t.Fatalf("%s has zero exploration bounds", name)
		}
	}
	if _, ok := peepul.Lookup("no-such-type"); ok {
		t.Fatal("Lookup of unknown name must fail")
	}
}

// TestMultiObjectTwoTypesOneConnection is the acceptance scenario of the
// redesign: two differently-typed named objects replicated between two
// nodes over a single connection, with per-object SyncStats showing zero
// commits shipped on re-sync.
func TestMultiObjectTwoTypesOneConnection(t *testing.T) {
	mkNode := func(name string, id int) *peepul.Node {
		n, err := peepul.NewNode(name, id)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a := mkNode("a", 1)
	b := mkNode("b", 2)

	aHits, err := peepul.Open(a, peepul.PNCounter, "hits")
	if err != nil {
		t.Fatal(err)
	}
	aFeed, err := peepul.Open(a, peepul.MLog, "feed")
	if err != nil {
		t.Fatal(err)
	}
	bHits, err := peepul.Open(b, peepul.PNCounter, "hits")
	if err != nil {
		t.Fatal(err)
	}
	bFeed, err := peepul.Open(b, peepul.MLog, "feed")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	aHits.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 7})
	bHits.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 5})
	aFeed.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "from-a"})
	bFeed.Do(peepul.MLogOp{Kind: peepul.MLogAppend, Msg: "from-b"})

	// One SyncWith = one connection syncing both objects.
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	av, err := aHits.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	if err != nil {
		t.Fatal(err)
	}
	bv, err := bHits.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	if err != nil {
		t.Fatal(err)
	}
	if av != 12 || bv != 12 {
		t.Fatalf("hits: a=%d b=%d, want 12", av, bv)
	}
	afs, err := aFeed.State()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := bFeed.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(afs) != 2 || len(bfs) != 2 {
		t.Fatalf("feed lengths: a=%d b=%d, want 2", len(afs), len(bfs))
	}

	// Converge the read-op commits, then measure a pure re-sync.
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	before := map[string][2]peepul.SyncStats{
		"hits": {a.ObjectStats("hits"), b.ObjectStats("hits")},
		"feed": {a.ObjectStats("feed"), b.ObjectStats("feed")},
	}
	if err := a.SyncWith(b.Addr()); err != nil {
		t.Fatal(err)
	}
	for object, prev := range before {
		for i, n := range []*peepul.Node{a, b} {
			after := n.ObjectStats(object)
			moved := (after.CommitsSent - prev[i].CommitsSent) + (after.CommitsRecv - prev[i].CommitsRecv)
			if moved != 0 {
				t.Fatalf("re-sync of %q moved %d commits on %s, want 0", object, moved, n.Name())
			}
			if after.DeltaSyncs != prev[i].DeltaSyncs+1 {
				t.Fatalf("%q on %s: DeltaSyncs %d -> %d, want exactly one more (single session)",
					object, n.Name(), prev[i].DeltaSyncs, after.DeltaSyncs)
			}
		}
	}
	if st := a.Stats(); st.Fallbacks != 0 || st.Misses != 0 {
		t.Fatalf("clean two-object sync must not fall back or miss: %+v", st)
	}
	if got := a.Objects(); !slices.Equal(got, []string{"feed", "hits"}) {
		t.Fatalf("Objects = %v", got)
	}
	if hs := aHits.Stats(); hs.DeltaSyncs == 0 {
		t.Fatalf("handle stats must surface per-object counters: %+v", hs)
	}
}

// TestOpenIsGetOrCreateAndTypeChecked: re-opening returns the same
// object; opening the same name under a different datatype fails.
func TestOpenIsGetOrCreateAndTypeChecked(t *testing.T) {
	n, err := peepul.NewNode("solo", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	h1, err := peepul.Open(n, peepul.PNCounter, "obj")
	if err != nil {
		t.Fatal(err)
	}
	h1.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 3})
	h2, err := peepul.Open(n, peepul.PNCounter, "obj")
	if err != nil {
		t.Fatal(err)
	}
	v, err := h2.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("re-opened handle sees %d, want 3", v)
	}
	if _, err := peepul.Open(n, peepul.MLog, "obj"); err == nil {
		t.Fatal("opening a counter object as a log must fail")
	}
	if _, err := peepul.Open(n, peepul.Datatype[int64, peepul.CounterOp, peepul.CounterVal]{}, "x"); err == nil {
		t.Fatal("opening with an incomplete descriptor must fail")
	}
}

// TestHandleBranchAndMerge drives the paper's branch-and-merge model
// through a handle: fork a local branch, diverge, and converge with the
// certified three-way merge.
func TestHandleBranchAndMerge(t *testing.T) {
	n, err := peepul.NewNode("main", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	h, err := peepul.Open(n, peepul.PNCounter, "cart-total")
	if err != nil {
		t.Fatal(err)
	}
	if h.Branch() != "main" || h.Object() != "cart-total" || h.Node() != n {
		t.Fatal("handle accessors")
	}
	if err := h.Fork("replica"); err != nil {
		t.Fatal(err)
	}
	h.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 10})
	h.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterInc, N: 5})
	h.DoOn("replica", peepul.CounterOp{Kind: peepul.CounterDec, N: 2})
	if err := h.Sync("main", "replica"); err != nil {
		t.Fatal(err)
	}
	ms, err := h.State()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := h.StateOf("replica")
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.P - ms.N; got != 13 {
		t.Fatalf("main = %d, want 13", got)
	}
	if got := rs.P - rs.N; got != 13 {
		t.Fatalf("replica = %d, want 13", got)
	}
	// Pull is exposed too: a further one-way merge is a no-op here.
	if err := h.Pull("main", "replica"); err != nil {
		t.Fatal(err)
	}
	if h.Store() == nil {
		t.Fatal("Store accessor")
	}
}

// TestFrontierOptionsPlumbThrough: node options reach every object store
// the node opens — a tighter have cap yields a smaller advertised
// frontier.
func TestFrontierOptionsPlumbThrough(t *testing.T) {
	n, err := peepul.NewNode("tuned", 1,
		peepul.WithFrontierMaxHave(4),
		peepul.WithFrontierDense(2),
		peepul.WithFrontierWalkBudget(64))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	h, err := peepul.Open(n, peepul.PNCounter, "hits")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1})
	}
	f, err := h.Store().Frontier("tuned")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Have) > 4 {
		t.Fatalf("frontier advertises %d hashes, cap is 4", len(f.Have))
	}

	// An untuned node over the same history advertises a larger sample.
	d, err := peepul.NewNode("default", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	hd, err := peepul.Open(d, peepul.PNCounter, "hits")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		hd.Do(peepul.CounterOp{Kind: peepul.CounterInc, N: 1})
	}
	fd, err := hd.Store().Frontier("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Have) <= 4 {
		t.Fatalf("default frontier advertises %d hashes, expected more than the tuned cap", len(fd.Have))
	}

	// Tuned nodes still converge: sampling quality affects bytes, never
	// correctness.
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := n.SyncWith(d.Addr()); err != nil {
		t.Fatal(err)
	}
	v, err := h.Do(peepul.CounterOp{Kind: peepul.CounterRead})
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Fatalf("converged = %d, want 200", v)
	}
}
