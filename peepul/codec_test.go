package peepul_test

import (
	"testing"

	"repro/peepul"
)

// TestCodecRoundTripAll is the registry-driven codec property test: for
// every registered datatype, a seeded random walk of its operation
// alphabet must satisfy, at every state s:
//
//   - Decode(Encode(s)) succeeds and is observationally equal to s;
//   - Encode(Decode(Encode(s))) is byte-identical to Encode(s);
//   - the content-address hash of the encoding is stable.
//
// New datatypes get this coverage by registering — no per-type test
// code.
func TestCodecRoundTripAll(t *testing.T) {
	for _, r := range peepul.All() {
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				if err := r.CodecRoundTrip(seed, 80); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
